// Package recovery closes the loop from deadlock *detection* to forward
// progress. The deadlock package diagnoses a wait cycle and the inject
// package retransmits lost packets, but until now a confirmed deadlock
// still wedged the run. The Supervisor turns the diagnosis into a liveness
// guarantee:
//
//  1. its own progress watchdog fires after StallThreshold zero-movement
//     cycles, and deadlock.Analyze confirms (or refutes) a wait cycle;
//  2. a deterministic victim selector picks the lowest packet ID on the
//     cycle — a rule that depends only on simulation state, so it is stable
//     across runs, hosts and -parallel widths;
//  3. the victim is purged with the engine's credit-conserving KillPacket
//     path (core.PurgePacket) — every resource it held is released exactly
//     as forwarding would release it, so the packets it was deadlocked
//     against resume — and handed to inject's retransmission machinery;
//  4. a per-packet recovery cap bounds the sacrifice: a packet purged more
//     than MaxRecoveries times escalates to a classified livelock verdict
//     (ErrLivelock) instead of an infinite purge/retry loop.
//
// Every action happens in the engine's PostCycle hook at a deterministic
// cycle, so a recovered run has one per-cycle StateHash stream — snapshots
// taken mid-recovery restore to it exactly (pinned by this package's
// tests).
//
// Independently, AnalyzeReachability (reach.go) classifies every src/dst
// pair of a traffic pattern against the faulted topology up front, so that
// when a second concurrent fault makes the hardware detour impossible the
// campaign layer reports exact per-pair ErrUnreachable counts instead of
// stalling until a watchdog gives up.
package recovery

import (
	"errors"
	"fmt"

	"sr2201/internal/core"
	"sr2201/internal/deadlock"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
)

// ErrLivelock classifies a run abandoned because some packet exceeded the
// per-packet recovery cap: purging it kept dissolving the cycle, but the
// retransmission re-deadlocked every time.
var ErrLivelock = errors.New("recovery: livelock (per-packet recovery cap exceeded)")

// DefaultMaxRecoveries is the default per-packet sacrifice cap.
const DefaultMaxRecoveries = 3

// Options tune the recovery supervisor.
type Options struct {
	// Enabled turns the supervisor on. The zero value leaves runs exactly
	// as they were: detection without recovery.
	Enabled bool
	// StallThreshold is the zero-movement cycle count after which the
	// supervisor's watchdog fires. <= 0 selects
	// deadlock.DefaultStallThreshold.
	StallThreshold int64
	// MaxRecoveries caps how many times one logical packet may be
	// sacrificed before the run escalates to ErrLivelock. <= 0 selects
	// DefaultMaxRecoveries.
	MaxRecoveries int
}

// Normalize applies the documented defaults in place.
func (o *Options) Normalize() {
	if o.StallThreshold <= 0 {
		o.StallThreshold = deadlock.DefaultStallThreshold
	}
	if o.MaxRecoveries <= 0 {
		o.MaxRecoveries = DefaultMaxRecoveries
	}
}

// Event records one recovery action: a victim purged from a confirmed wait
// cycle.
type Event struct {
	// Cycle is the simulation time of the purge.
	Cycle int64
	// Victim is the purged packet's ID (the lowest on the wait cycle).
	Victim uint64
	// Known, Src, Dst, Size describe the victim's header if one survived
	// anywhere in the network (core.Lost semantics).
	Known    bool
	Src, Dst geom.Coord
	Size     int
	// CycleLen is the length of the dissolved wait cycle.
	CycleLen int
	// Attempt numbers this sacrifice of the logical packet, starting at 1.
	Attempt int
	// Retransmit reports whether inject scheduled a re-send of the victim
	// (false for untraceable or non-unicast victims: their loss is final).
	Retransmit bool
}

// String renders the event as one line, used verbatim by the single-run
// report.
func (ev Event) String() string {
	what := fmt.Sprintf("pkt %d", ev.Victim)
	if ev.Known {
		what = fmt.Sprintf("pkt %d (%v -> %v, %d flits)", ev.Victim, ev.Src, ev.Dst, ev.Size)
	}
	tail := "retransmit scheduled"
	if !ev.Retransmit {
		tail = "loss is final"
	}
	return fmt.Sprintf("recovery @ cycle %d: wait cycle of length %d, victim %s, attempt %d, %s",
		ev.Cycle, ev.CycleLen, what, ev.Attempt, tail)
}

// Stats aggregates the supervisor's accounting.
type Stats struct {
	// StallsDetected counts watchdog firings (each is analyzed; not every
	// one is a deadlock).
	StallsDetected int
	// Recoveries counts victims purged from confirmed wait cycles.
	Recoveries int
	// VictimsUnrecoverable counts purged victims inject could not
	// retransmit (untraceable header or non-unicast traffic).
	VictimsUnrecoverable int
}

// Verdict is the supervisor's terminal classification of a run it could not
// keep alive. A decided verdict ends the run; the supervisor takes no
// further action.
type Verdict struct {
	// Decided marks a terminal verdict.
	Decided bool
	// Deadlocked is true when a wait cycle was confirmed but could not be
	// dissolved (no victim header found, or the cap was hit). False with
	// Decided means a stall without cyclic waiting (starvation/wedge).
	Deadlocked bool
	// Livelocked is true when the per-packet recovery cap was exceeded —
	// the ErrLivelock class. Implies Deadlocked.
	Livelocked bool
	// Cycle is the simulation time of the verdict.
	Cycle int64
	// Report is the wait-for-graph analysis behind the verdict. Diagnostic
	// only: it holds live engine pointers and is not part of snapshots.
	Report deadlock.Report
}

// Err maps the verdict to its classified error: ErrLivelock for a livelock,
// nil otherwise (deadlock/stall verdicts are reported through the existing
// outcome fields).
func (v Verdict) Err() error {
	if v.Livelocked {
		return ErrLivelock
	}
	return nil
}

// Supervisor is the liveness layer bound to one machine + injector pair. It
// installs itself on the engine's PostCycle hook (chaining any handler
// already there) and acts between cycles, never inside a phase.
type Supervisor struct {
	m   *core.Machine
	inj *inject.Injector
	opt Options
	wd  *deadlock.Watchdog

	verdict    Verdict
	stats      Stats
	events     []Event
	onEvent    func(Event)
	onDeadlock func(cycle int64)
}

// New attaches a supervisor to a machine and its injector (required: the
// injector owns the per-packet attempt history and the retransmission
// machinery the victims are handed to). Options are normalized with the
// documented defaults.
func New(m *core.Machine, inj *inject.Injector, opt Options) *Supervisor {
	if inj == nil {
		panic("recovery: New needs an injector")
	}
	opt.Normalize()
	s := &Supervisor{
		m:   m,
		inj: inj,
		opt: opt,
		wd:  deadlock.NewWatchdog(m.Engine(), opt.StallThreshold),
	}
	eng := m.Engine()
	prev := eng.PostCycle
	eng.PostCycle = func(c int64) {
		if prev != nil {
			prev(c)
		}
		s.tick(c)
	}
	return s
}

// OnEvent registers a callback invoked synchronously for every recovery
// event, after the purge and the retransmission hand-off. Must be
// deterministic if the run is to stay so.
func (s *Supervisor) OnEvent(fn func(Event)) { s.onEvent = fn }

// OnDeadlock registers a hand-off invoked after every successful victim
// purge, once the retransmission is scheduled and the event recorded: the
// hook where the reconfiguration manager reacts to a *confirmed* deadlock by
// recompiling the routing policy around the implicated resources. Runs in
// the PostCycle hook, so any policy swap it performs lands between cycles;
// it must be deterministic if the run is to stay so.
func (s *Supervisor) OnDeadlock(fn func(cycle int64)) { s.onDeadlock = fn }

// tick runs at the bottom of every engine Step.
func (s *Supervisor) tick(cycle int64) {
	if s.verdict.Decided || !s.wd.Stalled() {
		return
	}
	s.stats.StallsDetected++
	rep := deadlock.Analyze(s.m.Engine())
	if !rep.Deadlocked {
		// A stall without cyclic waiting: purging would not help (nothing
		// is waiting on a cycle), so classify and stop.
		s.verdict = Verdict{Decided: true, Cycle: cycle, Report: rep}
		return
	}
	// Deterministic victim: the lowest packet ID holding a port on the wait
	// cycle. Depends only on simulation state — identical across runs and
	// -parallel widths.
	var victim uint64
	found := false
	for _, e := range rep.Cycle {
		h := e.From.CurrentHeader()
		if h == nil {
			continue
		}
		if !found || h.PacketID < victim {
			victim = h.PacketID
			found = true
		}
	}
	if !found {
		// A cycle with no owning headers cannot be dissolved by a packet
		// purge; report the deadlock as-is.
		s.verdict = Verdict{Decided: true, Deadlocked: true, Cycle: cycle, Report: rep}
		return
	}
	attempt := s.inj.Victimized(victim) + 1
	if attempt > s.opt.MaxRecoveries {
		s.verdict = Verdict{Decided: true, Deadlocked: true, Livelocked: true, Cycle: cycle, Report: rep}
		return
	}
	lost, ok := s.m.PurgePacket(victim)
	if !ok {
		// The cycle names a packet with no physical trace — treat like the
		// header-less case above.
		s.verdict = Verdict{Decided: true, Deadlocked: true, Cycle: cycle, Report: rep}
		return
	}
	retx := s.inj.LoseVictim(cycle, lost)
	ev := Event{
		Cycle:      cycle,
		Victim:     victim,
		Known:      lost.Known,
		Src:        lost.Src,
		Dst:        lost.Dst,
		Size:       lost.Size,
		CycleLen:   len(rep.Cycle),
		Attempt:    attempt,
		Retransmit: retx,
	}
	s.events = append(s.events, ev)
	s.stats.Recoveries++
	if !retx {
		s.stats.VictimsUnrecoverable++
	}
	if s.onEvent != nil {
		s.onEvent(ev)
	}
	if s.onDeadlock != nil {
		s.onDeadlock(cycle)
	}
	// The purge frees resources but moves no flits; without a reset the
	// watchdog would re-fire next cycle on the not-yet-resumed network.
	s.wd.Reset()
}

// Verdict returns the supervisor's terminal classification (zero value
// until decided).
func (s *Supervisor) Verdict() Verdict { return s.verdict }

// Stats returns a snapshot of the accounting.
func (s *Supervisor) Stats() Stats { return s.stats }

// Events returns the recovery actions taken so far, in order.
func (s *Supervisor) Events() []Event { return s.events }

// Options returns the supervisor's normalized options.
func (s *Supervisor) Options() Options { return s.opt }
