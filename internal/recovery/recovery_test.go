package recovery_test

import (
	"errors"
	"testing"

	"sr2201/internal/checkpoint"
	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/recovery"
	"sr2201/internal/routing"
)

// fig9rig is the paper's Fig. 9 deadlocking configuration (D-XB != S-XB
// when separate) wired for recovery: a detoured 24-flit p2p around faulty
// router (2,1) crossing a broadcast from (3,2).
type fig9rig struct {
	m   *core.Machine
	inj *inject.Injector
	sup *recovery.Supervisor
}

func newFig9(t *testing.T, separate bool, maxRecoveries int) *fig9rig {
	t.Helper()
	cfg := core.Config{
		Shape:          geom.MustShape(4, 4),
		SXB:            geom.Coord{0, 0},
		StallThreshold: 256,
	}
	if separate {
		cfg.DXB = geom.Coord{0, 3}
		cfg.DXBSeparate = true
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddFault(fault.RouterFault(geom.Coord{2, 1})); err != nil {
		t.Fatal(err)
	}
	inj, err := inject.New(m, nil, inject.Options{Retransmit: true, RetryAfter: 32, StallThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	sup := recovery.New(m, inj, recovery.Options{Enabled: true, StallThreshold: 256, MaxRecoveries: maxRecoveries})
	return &fig9rig{m: m, inj: inj, sup: sup}
}

func (r *fig9rig) inject(t *testing.T, offset int) {
	t.Helper()
	if _, err := r.m.Send(geom.Coord{0, 1}, geom.Coord{2, 2}, 24); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < offset; i++ {
		r.m.Step()
	}
	if _, _, err := r.m.Broadcast(geom.Coord{3, 2}, 24); err != nil {
		t.Fatal(err)
	}
}

// run steps until drained or a decided verdict, within budget.
func (r *fig9rig) run(t *testing.T, budget int) bool {
	t.Helper()
	for i := 0; i < budget; i++ {
		if r.m.Engine().Quiescent() && !r.inj.Pending() {
			return true
		}
		if r.sup.Verdict().Decided {
			return false
		}
		r.m.Step()
	}
	t.Fatalf("run exceeded %d-cycle budget (cycle %d)", budget, r.m.Cycle())
	return false
}

// TestFig9DeadlockRecovered drives the deadlock-prone configuration to
// completion: the wait cycle is confirmed, the lowest-ID packet on it (the
// detoured p2p, pkt 1) is sacrificed, the broadcast drains, and the victim
// is retransmitted and delivered exactly once.
func TestFig9DeadlockRecovered(t *testing.T) {
	recovered := 0
	for off := 0; off <= 10; off++ {
		r := newFig9(t, true, 0)
		r.inject(t, off)
		if !r.run(t, 200_000) {
			t.Fatalf("offset %d: verdict %+v instead of drain", off, r.sup.Verdict())
		}
		if err := r.m.Engine().CheckInvariants(); err != nil {
			t.Fatalf("offset %d: invariants after recovery: %v", off, err)
		}
		st := r.inj.Stats()
		sst := r.sup.Stats()
		if st.Duplicates != 0 {
			t.Fatalf("offset %d: %d duplicate deliveries", off, st.Duplicates)
		}
		// Exactly-once accounting: 15 broadcast copies + the p2p, whether
		// or not it had to be sacrificed and resent.
		if got := len(r.m.Deliveries()); got != 16 {
			t.Fatalf("offset %d: %d deliveries, want 16", off, got)
		}
		if sst.Recoveries == 0 {
			if st.Victims != 0 || st.Retransmits != 0 {
				t.Fatalf("offset %d: no recoveries but victims=%d retx=%d", off, st.Victims, st.Retransmits)
			}
			continue
		}
		recovered++
		ev := r.sup.Events()[0]
		if ev.Victim != 1 || !ev.Known || !ev.Retransmit || ev.Attempt != 1 {
			t.Fatalf("offset %d: unexpected first recovery event %+v", off, ev)
		}
		if ev.Src != (geom.Coord{0, 1}) || ev.Dst != (geom.Coord{2, 2}) || ev.Size != 24 {
			t.Fatalf("offset %d: victim header %+v does not name the detoured p2p", off, ev)
		}
		if st.Victims != sst.Recoveries || st.Recovered != 1 {
			t.Fatalf("offset %d: stats %+v / %+v do not balance", off, st, sst)
		}
	}
	if recovered == 0 {
		t.Fatal("no offset deadlocked: the scenario no longer exercises recovery")
	}
}

// TestDeadlockFreeDesignZeroRecoveries runs the same traffic on the
// deadlock-free D-XB = S-XB design: the supervisor must never act.
func TestDeadlockFreeDesignZeroRecoveries(t *testing.T) {
	for off := 0; off <= 10; off++ {
		r := newFig9(t, false, 0)
		r.inject(t, off)
		if !r.run(t, 200_000) {
			t.Fatalf("offset %d: verdict %+v instead of drain", off, r.sup.Verdict())
		}
		sst := r.sup.Stats()
		if sst.StallsDetected != 0 || sst.Recoveries != 0 {
			t.Fatalf("offset %d: deadlock-free design triggered recovery: %+v", off, sst)
		}
		if got := len(r.m.Deliveries()); got != 16 {
			t.Fatalf("offset %d: %d deliveries, want 16", off, got)
		}
	}
}

// TestVictimDeterminism pins the recovery path's determinism: two identical
// runs produce the same per-cycle StateHash stream, the same events and the
// same final state — the victim rule depends only on simulation state.
func TestVictimDeterminism(t *testing.T) {
	trace := func() (hashes []uint64, events []recovery.Event, final uint64) {
		r := newFig9(t, true, 0)
		r.inject(t, 0)
		for i := 0; i < 200_000; i++ {
			if r.m.Engine().Quiescent() && !r.inj.Pending() {
				break
			}
			r.m.Step()
			hashes = append(hashes, r.m.Engine().StateHash())
		}
		return hashes, r.sup.Events(), r.m.Engine().StateHash()
	}
	h1, e1, f1 := trace()
	h2, e2, f2 := trace()
	if len(h1) != len(h2) || f1 != f2 {
		t.Fatalf("runs diverged: %d vs %d cycles, final %016x vs %016x", len(h1), len(h2), f1, f2)
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("StateHash diverged at step %d: %016x vs %016x", i, h1[i], h2[i])
		}
	}
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
	if len(e1) == 0 {
		t.Fatal("scenario produced no recovery events")
	}
}

// TestLivelockEscalation forces the victim to re-deadlock after its
// retransmission (a second broadcast timed into the resend window) with a
// per-packet cap of 1: the second sacrifice attempt must escalate to a
// classified livelock verdict instead of purging forever.
func TestLivelockEscalation(t *testing.T) {
	livelocked := false
	for x := int64(270); x <= 360 && !livelocked; x++ {
		r := newFig9(t, true, 1)
		r.inject(t, 0)
		for i := 0; i < 200_000; i++ {
			if r.m.Cycle() == x {
				if _, _, err := r.m.Broadcast(geom.Coord{3, 2}, 24); err != nil {
					t.Fatal(err)
				}
			}
			if r.m.Engine().Quiescent() && !r.inj.Pending() {
				break
			}
			if r.sup.Verdict().Decided {
				break
			}
			r.m.Step()
		}
		v := r.sup.Verdict()
		if !v.Livelocked {
			continue
		}
		livelocked = true
		if !v.Decided || !v.Deadlocked {
			t.Fatalf("x=%d: inconsistent livelock verdict %+v", x, v)
		}
		if !errors.Is(v.Err(), recovery.ErrLivelock) {
			t.Fatalf("x=%d: verdict error %v, want ErrLivelock", x, v.Err())
		}
		if got := r.sup.Stats().Recoveries; got != 1 {
			t.Fatalf("x=%d: %d recoveries before escalation, want exactly the cap (1)", x, got)
		}
		if len(v.Report.Cycle) == 0 {
			t.Fatalf("x=%d: livelock verdict carries no wait cycle", x)
		}
	}
	if !livelocked {
		t.Fatal("no second-broadcast timing produced a livelock; the cap escalation is untested")
	}
}

// TestSnapshotMidRecoveryStateHashStream checkpoints the run *after* the
// first sacrifice but before the retransmission lands, restores into a
// fresh machine/injector/supervisor trio, and demands the identical
// per-cycle StateHash stream, events and accounting to the uninterrupted
// run.
func TestSnapshotMidRecoveryStateHashStream(t *testing.T) {
	const snapAt = 280 // between the recovery at ~272 and the resend at ~304

	ref := newFig9(t, true, 0)
	ref.inject(t, 0)
	for ref.m.Cycle() < snapAt {
		ref.m.Step()
	}
	if len(ref.sup.Events()) != 1 {
		t.Fatalf("snapshot point %d is not mid-recovery: %d events", snapAt, len(ref.sup.Events()))
	}
	w := checkpoint.NewWriter()
	ref.m.EncodeState(w)
	ref.inj.EncodeState(w)
	ref.sup.EncodeState(w)
	snap := w.Bytes()

	var refHashes []uint64
	for i := 0; i < 200_000; i++ {
		if ref.m.Engine().Quiescent() && !ref.inj.Pending() {
			break
		}
		ref.m.Step()
		refHashes = append(refHashes, ref.m.Engine().StateHash())
	}

	res := newFig9(t, true, 0) // same spec, no traffic: state comes from the snapshot
	rd, err := checkpoint.NewReader(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.m.DecodeState(rd); err != nil {
		t.Fatal(err)
	}
	if err := res.inj.DecodeState(rd); err != nil {
		t.Fatal(err)
	}
	if err := res.sup.DecodeState(rd); err != nil {
		t.Fatal(err)
	}
	for i, want := range refHashes {
		if res.m.Engine().Quiescent() && !res.inj.Pending() {
			t.Fatalf("restored run drained %d steps early", len(refHashes)-i)
		}
		res.m.Step()
		if got := res.m.Engine().StateHash(); got != want {
			t.Fatalf("StateHash diverged %d steps after restore: %016x vs %016x", i, got, want)
		}
	}
	if !(res.m.Engine().Quiescent() && !res.inj.Pending()) {
		t.Fatal("restored run did not drain where the reference did")
	}
	if got, want := len(res.sup.Events()), len(ref.sup.Events()); got != want {
		t.Fatalf("restored run saw %d recovery events, reference %d", got, want)
	}
	for i := range ref.sup.Events() {
		if res.sup.Events()[i] != ref.sup.Events()[i] {
			t.Fatalf("event %d differs after restore: %+v vs %+v", i, res.sup.Events()[i], ref.sup.Events()[i])
		}
	}
	if res.inj.Stats() != ref.inj.Stats() {
		t.Fatalf("injector stats diverged: %+v vs %+v", res.inj.Stats(), ref.inj.Stats())
	}
	if res.sup.Stats() != ref.sup.Stats() {
		t.Fatalf("supervisor stats diverged: %+v vs %+v", res.sup.Stats(), ref.sup.Stats())
	}
}

// TestSupervisorSnapshotGuards pins the Expect guards: a snapshot cannot
// restore into a supervisor with different options.
func TestSupervisorSnapshotGuards(t *testing.T) {
	r := newFig9(t, true, 0)
	w := checkpoint.NewWriter()
	r.m.EncodeState(w)
	r.inj.EncodeState(w)
	r.sup.EncodeState(w)
	snap := w.Bytes()

	other := newFig9(t, true, 7) // different cap
	rd, err := checkpoint.NewReader(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.m.DecodeState(rd); err != nil {
		t.Fatal(err)
	}
	if err := other.inj.DecodeState(rd); err != nil {
		t.Fatal(err)
	}
	if err := other.sup.DecodeState(rd); err == nil {
		t.Fatal("restore under a different max-recoveries cap succeeded")
	}
}

// TestAnalyzeReachability classifies a shift+5 pattern against one- and
// two-fault topologies and cross-checks every prediction against the NIA's
// actual send verdicts.
func TestAnalyzeReachability(t *testing.T) {
	shape := geom.MustShape(4, 4)
	pat := func(src geom.Coord) geom.Coord {
		return shape.CoordOf((shape.Index(src) + 5) % shape.Size())
	}

	build := func(fs ...fault.Fault) *core.Machine {
		m, err := core.NewMachine(core.Config{Shape: shape})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fs {
			if err := m.AddFault(f); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}

	// Single fault: the paper's guarantee — every live pair is served (the
	// only refusals name the dead PE itself).
	one := build(fault.RouterFault(geom.Coord{2, 1}))
	r1 := recovery.AnalyzeReachability(one, pat)
	if r1.Unreachable != 0 {
		t.Fatalf("single fault: %d live pairs unreachable, want 0 (detour guarantee)", r1.Unreachable)
	}
	if r1.SourceDead != 1 || r1.DestDead != 1 {
		t.Fatalf("single fault: srcDead=%d dstDead=%d, want 1/1", r1.SourceDead, r1.DestDead)
	}

	// Second fault (an XB line) breaks detours: live pairs become
	// unreachable and the analyzer must predict exactly which.
	two := build(fault.RouterFault(geom.Coord{2, 1}), fault.XBFault(geom.LineOf(geom.Coord{0, 0}, 1)))
	r2 := recovery.AnalyzeReachability(two, pat)
	if r2.Unreachable == 0 {
		t.Fatal("two faults: no live pair unreachable; scenario lost its point")
	}
	if got := r2.Reachable + r2.SourceDead + r2.DestDead + r2.Unreachable; got != shape.Size() {
		t.Fatalf("classes sum to %d, want %d", got, shape.Size())
	}
	if got, want := len(r2.Pairs), r2.SourceDead+r2.DestDead+r2.Unreachable; got != want {
		t.Fatalf("%d pairs listed, want %d", got, want)
	}

	// Ground truth: issue every live send and compare refusals pair by
	// pair.
	denied := 0
	byPair := map[[2]geom.Coord]recovery.PairClass{}
	for _, p := range r2.Pairs {
		byPair[[2]geom.Coord{p.Src, p.Dst}] = p.Class
	}
	shape.Enumerate(func(src geom.Coord) bool {
		dst := pat(src)
		if dst.Equal(src) || !two.Alive(src) {
			return true
		}
		_, err := two.Send(src, dst, 4)
		class, listed := byPair[[2]geom.Coord{src, dst}]
		if err != nil {
			denied++
			if !errors.Is(err, routing.ErrUnreachable) {
				t.Fatalf("%v -> %v: refused with %v, not ErrUnreachable", src, dst, err)
			}
			if !listed || (class != recovery.PairDestDead && class != recovery.PairUnreachable) {
				t.Fatalf("%v -> %v refused but classified %v", src, dst, class)
			}
		} else if listed && class != recovery.PairSourceDead {
			t.Fatalf("%v -> %v accepted but classified %v", src, dst, class)
		}
		return true
	})
	if denied != r2.Denied() {
		t.Fatalf("observed %d refusals, predicted %d", denied, r2.Denied())
	}
}
