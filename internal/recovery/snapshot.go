package recovery

import (
	"sr2201/internal/checkpoint"
	"sr2201/internal/geom"
)

// Supervisor snapshot/restore. The options are spec (a restore target is
// built with New against the same options — Expect-guarded), everything the
// supervisor has *done* is state: the watchdog's progress memory, the
// accounting, the verdict flags and the event log. A snapshot taken
// mid-recovery therefore restores to the identical per-cycle StateHash
// stream and the identical event/report text.
//
// Verdict.Report is deliberately not encoded: it holds live engine
// pointers and exists only for diagnostics at the instant the verdict is
// printed; a decided verdict ends the run, so resumable snapshots never
// depend on it.

const secRecoverySup = "recovery.sup"

// EncodeState appends the supervisor's dynamic state as the
// "recovery.sup" section.
func (s *Supervisor) EncodeState(w *checkpoint.Writer) {
	e := w.Section(secRecoverySup)
	e.Int(s.opt.StallThreshold)
	e.Int(int64(s.opt.MaxRecoveries))
	s.wd.EncodeState(e)
	e.Int(int64(s.stats.StallsDetected))
	e.Int(int64(s.stats.Recoveries))
	e.Int(int64(s.stats.VictimsUnrecoverable))
	e.Bool(s.verdict.Decided)
	e.Bool(s.verdict.Deadlocked)
	e.Bool(s.verdict.Livelocked)
	e.Int(s.verdict.Cycle)
	e.Uint(uint64(len(s.events)))
	for _, ev := range s.events {
		e.Int(ev.Cycle)
		e.Uint(ev.Victim)
		e.Bool(ev.Known)
		geom.EncodeCoord(e, ev.Src)
		geom.EncodeCoord(e, ev.Dst)
		e.Int(int64(ev.Size))
		e.Int(int64(ev.CycleLen))
		e.Int(int64(ev.Attempt))
		e.Bool(ev.Retransmit)
	}
}

// DecodeState restores the "recovery.sup" section into this supervisor,
// which must have been built with New against the same options.
func (s *Supervisor) DecodeState(r *checkpoint.Reader) error {
	d, err := r.Section(secRecoverySup)
	if err != nil {
		return err
	}
	d.Expect(s.opt.StallThreshold, "recovery stall threshold")
	d.Expect(int64(s.opt.MaxRecoveries), "recovery max-recoveries cap")
	s.wd.DecodeState(d)
	var stats Stats
	stats.StallsDetected = d.IntAsInt()
	stats.Recoveries = d.IntAsInt()
	stats.VictimsUnrecoverable = d.IntAsInt()
	var v Verdict
	v.Decided = d.Bool()
	v.Deadlocked = d.Bool()
	v.Livelocked = d.Bool()
	v.Cycle = d.Int()
	n := d.Len(8)
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		var ev Event
		ev.Cycle = d.Int()
		ev.Victim = d.Uint()
		ev.Known = d.Bool()
		ev.Src = geom.DecodeCoord(d)
		ev.Dst = geom.DecodeCoord(d)
		ev.Size = d.IntAsInt()
		ev.CycleLen = d.IntAsInt()
		ev.Attempt = d.IntAsInt()
		ev.Retransmit = d.Bool()
		events = append(events, ev)
	}
	if err := d.Finish(); err != nil {
		return err
	}
	s.stats = stats
	s.verdict = v
	s.events = events
	return nil
}
