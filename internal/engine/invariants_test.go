package engine

import (
	"math/rand"
	"testing"

	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

// checkEvery steps the engine n cycles, auditing invariants after each.
func checkEvery(t *testing.T, e *Engine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		e.Step()
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", e.Cycle(), err)
		}
	}
}

func TestInvariantsSimpleTraffic(t *testing.T) {
	e := New(DefaultConfig())
	a, _, _ := line(e)
	e.Inject(a, mkPacket(1, geom.Coord{}, 6))
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("after inject: %v", err)
	}
	checkEvery(t, e, 60)
	if !e.Quiescent() {
		t.Fatal("did not drain")
	}
}

// Property-style audit: a randomized mix of unicast and fan-out traffic on a
// random switch fabric must preserve every invariant on every cycle,
// including through deadlocks (a wedged network still conserves flits and
// credits).
func TestInvariantsRandomizedFabric(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			BufferDepth: 1 + rng.Intn(4),
			LinkDelay:   1 + rng.Intn(2),
			Acquire:     AcquireMode(rng.Intn(2)),
		}
		e := New(cfg)

		// A ring of switches with two endpoints per switch and a chord.
		k := 3 + rng.Intn(4)
		route := func(n *Node, in int, h *flit.Header) (Decision, error) {
			self := n.Meta.(int)
			if h.Dst[0] == self {
				if h.Dst[1] == 1 {
					return Decision{Outs: []int{1}}, nil
				}
				return Decision{Outs: []int{0}}, nil
			}
			if h.RC == flit.RCBroadcast {
				// Fan to both endpoints and onward.
				return Decision{Outs: []int{0, 1, 3}}, nil
			}
			return Decision{Outs: []int{3}}, nil
		}
		var eps []*Node
		var sws []*Node
		for i := 0; i < k; i++ {
			e0 := e.AddEndpoint("", i)
			e1 := e.AddEndpoint("", i)
			sw := e.AddSwitch("", 4, route, i)
			e.Connect(e0, 0, sw, 0)
			e.Connect(e1, 0, sw, 1)
			eps = append(eps, e0, e1)
			sws = append(sws, sw)
		}
		for i := 0; i < k; i++ {
			e.ConnectDirected(sws[i], 3, sws[(i+1)%k], 2)
		}

		var id uint64
		for cycle := 0; cycle < 300; cycle++ {
			if rng.Float64() < 0.3 {
				id++
				src := eps[rng.Intn(len(eps))]
				h := &flit.Header{
					PacketID: id,
					Dst:      geom.Coord{rng.Intn(k), rng.Intn(2)},
				}
				e.Inject(src, flit.NewPacket(h, 1+rng.Intn(10)))
			}
			e.Step()
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("seed %d cycle %d: %v", seed, cycle, err)
			}
		}
		// Note: broadcast-marked packets are not injected here because the
		// ring fan would replicate forever; unicast + the fan decision path
		// is exercised via the engine fan tests below.
	}
}

// Fan-out traffic with contention must also preserve the invariants even
// while partially granted (incremental mode holds partial port sets).
func TestInvariantsUnderFanOutContention(t *testing.T) {
	for _, mode := range []AcquireMode{AcquireAtomic, AcquireIncremental} {
		e := New(Config{BufferDepth: 2, LinkDelay: 1, Acquire: mode})
		src1 := e.AddEndpoint("S1", nil)
		src2 := e.AddEndpoint("S2", nil)
		d1 := e.AddEndpoint("D1", nil)
		d2 := e.AddEndpoint("D2", nil)
		fan := func(n *Node, in int, h *flit.Header) (Decision, error) {
			return Decision{Outs: []int{2, 3}}, nil
		}
		sw := e.AddSwitch("SW", 4, fan, nil)
		e.Connect(src1, 0, sw, 0)
		e.Connect(src2, 0, sw, 1)
		e.Connect(d1, 0, sw, 2)
		e.Connect(d2, 0, sw, 3)
		e.Inject(src1, mkPacket(1, geom.Coord{}, 8))
		e.Inject(src2, mkPacket(2, geom.Coord{}, 8))
		for i := 0; i < 80; i++ {
			e.Step()
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("mode %v cycle %d: %v", mode, i, err)
			}
		}
		if !e.Quiescent() {
			t.Fatalf("mode %v: fan-out contention did not drain", mode)
		}
	}
}

// A deadlocked network still satisfies conservation: nothing leaks, nothing
// is double-counted; the wedge is purely a waiting cycle.
func TestInvariantsHoldInDeadlock(t *testing.T) {
	e := New(Config{BufferDepth: 1, LinkDelay: 1})
	eps, _ := buildRing(e, 4)
	for i := 0; i < 4; i++ {
		e.Inject(eps[i], mkPacket(uint64(i+1), geom.Coord{(i + 2) % 4}, 16))
	}
	for i := 0; i < 300; i++ {
		e.Step()
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	if e.Quiescent() {
		t.Fatal("expected a wedged ring")
	}
}
