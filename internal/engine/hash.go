package engine

// StateHash digests the engine's dynamic state — every flit position, every
// cut-through ownership, every credit counter — into one FNV-1a value. Two
// engines built identically and stepped the same number of cycles must
// produce equal hashes; the golden determinism tests and the active-set
// differential tests compare per-cycle hash streams to pin the kernel's
// bit-for-bit reproducibility guarantee (DESIGN.md §5).
//
// The hash walks the full network in creation order, deliberately ignoring
// the active sets, so it cannot mask a scheduling bug: a flit the scheduler
// lost track of still hashes differently from a flit that moved.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

type fnv64 uint64

func (h *fnv64) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnvPrime64
		v >>= 8
	}
	*h = fnv64(x)
}

func (h *fnv64) i64(v int64) { h.u64(uint64(v)) }

// StateHash returns the FNV-1a digest of the current simulation state.
func (e *Engine) StateHash() uint64 {
	h := fnv64(fnvOffset64)
	h.i64(e.cycle)
	h.i64(e.resident)
	h.i64(e.moves)
	h.i64(e.dropped)
	for _, n := range e.nodes {
		h.i64(int64(n.ID))
		q := n.pendingInject()
		h.i64(int64(len(q)))
		for i := range q {
			f := &q[i]
			h.u64(f.PacketID)
			h.i64(int64(f.Seq))
		}
		for _, in := range n.In {
			h.i64(int64(len(in.buf)))
			for i := range in.buf {
				f := &in.buf[i]
				h.u64(f.PacketID)
				h.i64(int64(f.Seq))
			}
			if rs := in.route; rs != nil {
				h.u64(1)
				if rs.header != nil {
					h.u64(rs.header.PacketID)
				}
				if rs.sink {
					h.u64(0xdead)
				}
				if rs.provisional {
					// Hashed only when set, so runs without adaptive routing
					// produce the exact pre-VC hash stream.
					h.u64(0xadaf)
				}
				h.i64(rs.since)
				for i, o := range rs.outs {
					h.i64(int64(o))
					if rs.granted[i] {
						h.u64(1)
					} else {
						h.u64(0)
					}
				}
			} else {
				h.u64(0)
			}
		}
		for _, out := range n.Out {
			h.i64(int64(out.credits))
			h.i64(int64(out.arb))
			if out.owner != nil {
				h.u64(uint64(out.owner.ordKey) + 1)
			} else {
				h.u64(0)
			}
		}
	}
	for _, l := range e.links {
		h.i64(int64(len(l.pipe)))
		for i := range l.pipe {
			en := &l.pipe[i]
			h.u64(en.f.PacketID)
			h.i64(int64(en.f.Seq))
			h.i64(int64(en.age))
		}
	}
	for _, pc := range e.phys {
		h.i64(int64(pc.arb))
	}
	return uint64(h)
}
