package engine

// Dynamic faults: a switch dying *while traffic is in flight*. The kernel's
// contribution is KillSwitch, which marks the switch failed and purges every
// packet the death wounds, releasing all resources those packets held so the
// surviving traffic keeps flowing under intact conservation laws (the same
// invariants CheckInvariants audits).
//
// Semantics (DESIGN.md §6): a packet is *wounded* when, at the instant of
// the fault, it has a flit or an open cut-through state at the dead switch,
// or a flit in flight on a link into it. Wounded packets are removed from
// the whole network — a cut-through circuit spans switches, and a partial
// removal would leave headerless flit trains that the kernel (correctly)
// treats as a fatal protocol violation. Packets whose headers have not yet
// reached the dead switch are untouched: the routing layer's rebuilt fault
// bits steer them around the fault (RC=3 detour), or they are dropped on
// arrival at the failed switch like any misrouted packet.

import (
	"fmt"
	"slices"

	"sr2201/internal/flit"
)

// KilledPacket identifies one packet destroyed by KillSwitch.
type KilledPacket struct {
	ID uint64
	// Header is the packet's last known header (source, destination, RC bits
	// at the point of death). Nil only if no header-bearing flit of the
	// packet remained anywhere in the network.
	Header *flit.Header
	// AlreadyDropped marks a packet that the routing layer had already sunk
	// (counted in Dropped and reported via OnDrop) before the fault; the
	// purge reclaims its resources but does not count it dropped again.
	AlreadyDropped bool
}

// KillSwitch marks a switch faulty mid-run and purges every wounded packet
// (see the package comment above for the wound rule) from the entire
// network: source-queue tails, input buffers, link pipelines, cut-through
// states and endpoint receive state. All resources are released exactly as
// normal forwarding would release them — buffer slots return credits
// upstream, granted output ports are freed — so credit conservation and
// ownership consistency hold after the call. Each purged packet not already
// sunk by routing counts once toward Dropped; OnDrop is NOT invoked (the
// fault layer, not the routing function, decides what a dynamic loss
// means).
//
// The returned casualties are sorted by packet ID. Call between Steps (or
// from the PreCycle hook), never from within a phase.
func (e *Engine) KillSwitch(n *Node) []KilledPacket {
	if n.Kind != KindSwitch {
		panic(fmt.Sprintf("engine: KillSwitch on non-switch %q", n.Name))
	}
	n.Failed = true

	// Collect the wounded set: packets present at n or in flight into n.
	wounded := map[uint64]*flit.Header{}
	add := func(id uint64, h *flit.Header) {
		if cur, ok := wounded[id]; !ok || (cur == nil && h != nil) {
			wounded[id] = h
		}
	}
	for _, in := range n.In {
		for i := range in.buf {
			add(in.buf[i].PacketID, in.buf[i].Header)
		}
		if rs := in.route; rs != nil && rs.header != nil {
			add(rs.header.PacketID, rs.header)
		}
	}
	for _, l := range e.links {
		if l.to.node != n {
			continue
		}
		for i := range l.pipe {
			add(l.pipe[i].f.PacketID, l.pipe[i].f.Header)
		}
	}
	if len(wounded) == 0 {
		return nil
	}
	sunk, _ := e.purgeWounded(wounded)

	ids := make([]uint64, 0, len(wounded))
	for id := range wounded {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	out := make([]KilledPacket, 0, len(ids))
	for _, id := range ids {
		k := KilledPacket{ID: id, Header: wounded[id], AlreadyDropped: sunk[id]}
		if !k.AlreadyDropped {
			e.dropped++
		}
		out = append(out, k)
	}
	return out
}

// KillPacket purges one packet — every flit, route state and receive state
// it holds anywhere in the network — with the same credit-conserving
// semantics as KillSwitch, but without marking any switch failed. The
// recovery layer uses it to sacrifice a deadlock victim: all resources the
// packet held are released exactly as normal forwarding would release them,
// so the packets it was deadlocked against resume.
//
// The second return is false (and nothing is counted dropped) when no trace
// of the packet remains in the network. As with KillSwitch, call between
// Steps (or from the PreCycle/PostCycle hooks), never from within a phase;
// OnDrop is not invoked.
func (e *Engine) KillPacket(id uint64) (KilledPacket, bool) {
	wounded := map[uint64]*flit.Header{id: nil}
	sunk, removed := e.purgeWounded(wounded)
	if removed == 0 {
		return KilledPacket{}, false
	}
	k := KilledPacket{ID: id, Header: wounded[id], AlreadyDropped: sunk[id]}
	if !k.AlreadyDropped {
		e.dropped++
	}
	return k, true
}

// purgeWounded removes every trace of the wounded packets from the whole
// network — source-queue tails, input buffers, link pipelines, cut-through
// states and endpoint receive state — releasing each resource exactly as
// normal forwarding would (buffer slots and in-flight reservations return
// credits upstream, granted output ports are freed). It upgrades wounded's
// header entries as better headers surface, returns the set of packets the
// routing layer had already sunk (counted dropped before the purge), and
// the number of flits/states physically removed.
func (e *Engine) purgeWounded(wounded map[uint64]*flit.Header) (sunk map[uint64]bool, removed int) {
	add := func(id uint64, h *flit.Header) {
		if cur, ok := wounded[id]; !ok || (cur == nil && h != nil) {
			wounded[id] = h
		}
	}
	hit := func(id uint64) bool {
		_, ok := wounded[id]
		return ok
	}

	// sunk remembers packets the routing layer had already counted as
	// dropped (sink states).
	sunk = map[uint64]bool{}
	for _, nd := range e.nodes {
		if nd.Kind == KindEndpoint && nd.InjectQueueLen() > 0 {
			// Un-injected tails of wounded packets die in the source queue.
			kept := nd.injectQ[:nd.injectHead]
			for _, f := range nd.pendingInject() {
				if hit(f.PacketID) {
					add(f.PacketID, f.Header)
					e.resident--
					removed++
					continue
				}
				kept = append(kept, f)
			}
			nd.injectQ = kept
			if nd.injectHead == len(nd.injectQ) {
				nd.injectQ = nd.injectQ[:0]
				nd.injectHead = 0
			}
		}
		for _, in := range nd.In {
			if len(in.buf) > 0 {
				kept := in.buf[:0]
				for i := range in.buf {
					f := in.buf[i]
					if hit(f.PacketID) {
						add(f.PacketID, f.Header)
						// Freeing the slot returns the credit upstream,
						// exactly as pop() would.
						if in.upstream != nil {
							in.upstream.from.creditReturn()
						}
						e.resident--
						removed++
						continue
					}
					kept = append(kept, f)
				}
				in.buf = kept
			}
			if rs := in.route; rs != nil && rs.header != nil && hit(rs.header.PacketID) {
				add(rs.header.PacketID, rs.header)
				if rs.sink {
					sunk[rs.header.PacketID] = true
				} else {
					for i, o := range rs.outs {
						if rs.granted[i] {
							nd.Out[o].owner = nil
						}
					}
				}
				e.freeRouteStateAt(nd, rs)
				in.route = nil
				removed++
			}
			if in.recvHeader != nil && hit(in.recvHeader.PacketID) {
				add(in.recvHeader.PacketID, in.recvHeader)
				in.recvHeader = nil
				removed++
			}
		}
	}
	for _, l := range e.links {
		if len(l.pipe) == 0 {
			continue
		}
		kept := l.pipe[:0]
		for i := range l.pipe {
			en := l.pipe[i]
			if hit(en.f.PacketID) {
				add(en.f.PacketID, en.f.Header)
				// A flit in flight holds a downstream buffer reservation.
				l.from.creditReturn()
				e.resident--
				removed++
				continue
			}
			kept = append(kept, en)
		}
		l.pipe = kept
	}
	return sunk, removed
}
