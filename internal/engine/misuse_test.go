package engine

import (
	"testing"

	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// Construction misuse is programmer error and must fail fast.
func TestConstructionMisusePanics(t *testing.T) {
	e := New(DefaultConfig())
	expectPanic(t, "zero-port switch", func() { e.AddSwitch("S", 0, passThrough, nil) })
	expectPanic(t, "nil-route switch", func() { e.AddSwitch("S", 2, nil, nil) })

	a := e.AddEndpoint("A", nil)
	b := e.AddEndpoint("B", nil)
	sw := e.AddSwitch("SW", 2, passThrough, nil)
	e.Connect(a, 0, sw, 0)
	expectPanic(t, "double-connect output", func() { e.ConnectDirected(a, 0, sw, 1) })
	expectPanic(t, "double-connect input", func() { e.ConnectDirected(b, 0, sw, 0) })
	e.Connect(b, 0, sw, 1)
	expectPanic(t, "double physical-channel membership", func() {
		e.SharePhysical(sw.Out[0], sw.Out[1])
		e.SharePhysical(sw.Out[0])
	})
}

// Routing-function misuse (bad port numbers) must fail fast at allocation.
func TestBadRoutePanics(t *testing.T) {
	cases := []struct {
		name  string
		route RouteFunc
	}{
		{"out of range", func(n *Node, in int, h *flit.Header) (Decision, error) {
			return Decision{Outs: []int{9}}, nil
		}},
		{"duplicate ports", func(n *Node, in int, h *flit.Header) (Decision, error) {
			return Decision{Outs: []int{1, 1}}, nil
		}},
	}
	for _, tc := range cases {
		e := New(DefaultConfig())
		a := e.AddEndpoint("A", nil)
		b := e.AddEndpoint("B", nil)
		sw := e.AddSwitch("SW", 2, tc.route, nil)
		e.Connect(a, 0, sw, 0)
		e.Connect(b, 0, sw, 1)
		e.Inject(a, flit.NewPacket(&flit.Header{PacketID: 1, Dst: geom.Coord{}}, 1))
		expectPanic(t, tc.name, func() {
			for i := 0; i < 10; i++ {
				e.Step()
			}
		})
	}
}

// Routing to an unconnected port is also a wiring bug.
func TestUnconnectedPortPanics(t *testing.T) {
	e := New(DefaultConfig())
	a := e.AddEndpoint("A", nil)
	sw := e.AddSwitch("SW", 3, func(n *Node, in int, h *flit.Header) (Decision, error) {
		return Decision{Outs: []int{2}}, nil // port 2 never wired
	}, nil)
	b := e.AddEndpoint("B", nil)
	e.Connect(a, 0, sw, 0)
	e.Connect(b, 0, sw, 1)
	e.Inject(a, flit.NewPacket(&flit.Header{PacketID: 1}, 1))
	expectPanic(t, "unconnected port", func() {
		for i := 0; i < 10; i++ {
			e.Step()
		}
	})
}

// An endpoint with no outbound wiring cannot inject.
func TestDanglingEndpointPanics(t *testing.T) {
	e := New(DefaultConfig())
	a := e.AddEndpoint("A", nil)
	e.Inject(a, flit.NewPacket(&flit.Header{PacketID: 1}, 1))
	expectPanic(t, "dangling endpoint", func() {
		for i := 0; i < 5; i++ {
			e.Step()
		}
	})
}
