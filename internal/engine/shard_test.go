package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

// shardPlans enumerates the partitions the equivalence tests exercise on an
// n-node engine: the generic contiguous planner at several counts (even and
// odd) and a deliberately adversarial round-robin scatter that maximizes
// boundary links.
func shardPlans(e *Engine, counts ...int) map[string]ShardPlan {
	plans := map[string]ShardPlan{}
	for _, c := range counts {
		plans[fmt.Sprintf("plan%d", c)] = e.PlanShards(c)
	}
	for _, c := range counts {
		if c < 2 {
			continue
		}
		assign := make([]int, len(e.Nodes()))
		for i := range assign {
			assign[i] = i % c
		}
		plans[fmt.Sprintf("scatter%d", c)] = ShardPlan{N: c, Assign: assign}
	}
	return plans
}

// lockstepCompare steps both engines together, comparing the full state hash
// every cycle, until both drain or the cycle budget runs out.
func lockstepCompare(t *testing.T, ref, got *Engine, cycles int, what string) {
	t.Helper()
	for c := 0; c < cycles; c++ {
		ref.Step()
		got.Step()
		if hr, hg := ref.StateHash(), got.StateHash(); hr != hg {
			t.Fatalf("%s diverged at cycle %d: serial=%#x sharded=%#x", what, c+1, hr, hg)
		}
		if ref.Quiescent() && got.Quiescent() {
			return
		}
	}
	t.Fatalf("%s did not drain in %d cycles", what, cycles)
}

func TestShardEquivalenceChain(t *testing.T) {
	// The sharded stepper must emit a per-cycle StateHash stream
	// byte-identical to the serial engine, for every shard count and for
	// arbitrary (not just contiguous) node assignments, under the same
	// config matrix the active-set differential test uses.
	cfgs := []Config{
		{BufferDepth: 1, LinkDelay: 1, Acquire: AcquireAtomic},
		{BufferDepth: 2, LinkDelay: 1, Acquire: AcquireAtomic},
		{BufferDepth: 4, LinkDelay: 3, Acquire: AcquireIncremental},
		{BufferDepth: 8, LinkDelay: 2, Acquire: AcquireAtomic, EjectRate: 1},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		probe, _ := chainScenario(cfg, 8)
		for name, plan := range shardPlans(probe, 1, 2, 3, 4) {
			plan := plan
			t.Run(fmt.Sprintf("depth%d_delay%d_%s", cfg.BufferDepth, cfg.LinkDelay, name), func(t *testing.T) {
				serial, _ := chainScenario(cfg, 8)
				sharded, _ := chainScenario(cfg, 8)
				if err := sharded.SetShards(plan); err != nil {
					t.Fatalf("SetShards: %v", err)
				}
				lockstepCompare(t, serial, sharded, 600, "chain")
			})
		}
	}
}

func TestShardEquivalenceFullScan(t *testing.T) {
	// Sharding composes with the full-scan reference mode: serial
	// active-set vs sharded full-scan must still agree.
	serial, _ := chainScenario(DefaultConfig(), 8)
	off := DefaultConfig()
	off.DisableActiveSet = true
	sharded, _ := chainScenario(off, 8)
	if err := sharded.SetShards(sharded.PlanShards(3)); err != nil {
		t.Fatalf("SetShards: %v", err)
	}
	lockstepCompare(t, serial, sharded, 600, "fullscan")
}

func TestShardCountersEquivalence(t *testing.T) {
	// The phase visit counters fold across shards to exactly the serial
	// totals (the route-state pool counters are per-shard and exempt).
	serial, _ := chainScenario(DefaultConfig(), 8)
	sharded, _ := chainScenario(DefaultConfig(), 8)
	if err := sharded.SetShards(sharded.PlanShards(4)); err != nil {
		t.Fatalf("SetShards: %v", err)
	}
	lockstepCompare(t, serial, sharded, 600, "counters run")
	cs, cd := serial.Counters(), sharded.Counters()
	cs.RouteStatesAllocated, cd.RouteStatesAllocated = 0, 0
	cs.RouteStatesReused, cd.RouteStatesReused = 0, 0
	if cs != cd {
		t.Errorf("visit counters diverged:\nserial:  %+v\nsharded: %+v", cs, cd)
	}
}

func TestShardMidRunReshard(t *testing.T) {
	// Re-partitioning between Steps is invisible to the simulation: run
	// serial for a while, switch to 3 shards, back to 2, and the stream
	// must track a never-sharded engine bit for bit.
	serial, _ := chainScenario(DefaultConfig(), 8)
	resharded, _ := chainScenario(DefaultConfig(), 8)
	for c := 0; c < 600; c++ {
		switch c {
		case 40:
			if err := resharded.SetShards(resharded.PlanShards(3)); err != nil {
				t.Fatalf("SetShards(3): %v", err)
			}
		case 90:
			if err := resharded.SetShards(resharded.PlanShards(2)); err != nil {
				t.Fatalf("SetShards(2): %v", err)
			}
		}
		serial.Step()
		resharded.Step()
		if hs, hr := serial.StateHash(), resharded.StateHash(); hs != hr {
			t.Fatalf("diverged at cycle %d: serial=%#x resharded=%#x", c+1, hs, hr)
		}
		if serial.Quiescent() && resharded.Quiescent() {
			return
		}
	}
	t.Fatal("scenario did not drain in 600 cycles")
}

func TestShardSnapshotCrossShardCount(t *testing.T) {
	// A snapshot of a sharded run restores into an engine at any other
	// shard count and the stream stays identical to serial — the snapshot
	// format carries no trace of the partition.
	serial, _ := chainScenario(DefaultConfig(), 8)
	donor, _ := chainScenario(DefaultConfig(), 8)
	if err := donor.SetShards(donor.PlanShards(4)); err != nil {
		t.Fatalf("SetShards: %v", err)
	}
	for c := 0; c < 25; c++ {
		serial.Step()
		donor.Step()
	}
	snap := donor.Snapshot()
	for _, n := range []int{1, 2, 3} {
		restored, _ := chainScenario(DefaultConfig(), 8)
		if err := restored.SetShards(restored.PlanShards(n)); err != nil {
			t.Fatalf("SetShards(%d): %v", n, err)
		}
		if err := restored.Restore(snap); err != nil {
			t.Fatalf("restore into %d shards: %v", n, err)
		}
		if hs, hr := serial.StateHash(), restored.StateHash(); hs != hr {
			t.Fatalf("restored state at %d shards hashes %#x, serial %#x", n, hr, hs)
		}
		ref, _ := chainScenario(DefaultConfig(), 8)
		if err := ref.Restore(snap); err != nil {
			t.Fatalf("restore serial ref: %v", err)
		}
		lockstepCompare(t, ref, restored, 600, fmt.Sprintf("restored@%d", n))
	}
}

func TestSetShardsValidation(t *testing.T) {
	e, _ := chainScenario(DefaultConfig(), 4)
	nodes := len(e.Nodes())
	if err := e.SetShards(ShardPlan{N: 0}); err == nil {
		t.Error("accepted shard count 0")
	}
	if err := e.SetShards(ShardPlan{N: 2}); err == nil {
		t.Error("accepted 2 shards without an assignment")
	}
	if err := e.SetShards(ShardPlan{N: 2, Assign: make([]int, nodes-1)}); err == nil {
		t.Error("accepted a short assignment")
	}
	bad := make([]int, nodes)
	bad[1] = 2
	if err := e.SetShards(ShardPlan{N: 2, Assign: bad}); err == nil {
		t.Error("accepted an out-of-range shard index")
	}
	// A failed SetShards leaves the engine runnable.
	ref, _ := chainScenario(DefaultConfig(), 4)
	lockstepCompare(t, ref, e, 400, "after rejected plans")

	// Splitting a physical channel across shards is rejected.
	pe := New(DefaultConfig())
	swA := pe.AddSwitch("A", 2, func(nd *Node, in int, h *flit.Header) (Decision, error) {
		return Decision{Outs: []int{in}}, nil
	}, nil)
	epA := pe.AddEndpoint("pA", nil)
	epB := pe.AddEndpoint("pB", nil)
	pe.Connect(epA, 0, swA, 0)
	pe.Connect(epB, 0, swA, 1)
	pe.SharePhysical(swA.Out[0], swA.Out[1])
	pe.SharePhysical(epA.Out[0], epB.Out[0])
	if err := pe.SetShards(ShardPlan{N: 2, Assign: []int{0, 0, 1}}); err == nil {
		t.Error("accepted a physical channel spanning two shards")
	}
	if err := pe.SetShards(ShardPlan{N: 2, Assign: []int{0, 1, 1}}); err != nil {
		t.Errorf("rejected a channel-respecting plan: %v", err)
	}
}

func TestPlanShardsProperties(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 100} {
		e, _ := chainScenario(DefaultConfig(), 8)
		p := e.PlanShards(n)
		if len(p.Assign) != len(e.Nodes()) {
			t.Fatalf("PlanShards(%d): %d assignments for %d nodes", n, len(p.Assign), len(e.Nodes()))
		}
		seen := make([]int, p.N)
		for id, s := range p.Assign {
			if s < 0 || s >= p.N {
				t.Fatalf("PlanShards(%d): node %d in shard %d of %d", n, id, s, p.N)
			}
			seen[s]++
		}
		for s, c := range seen {
			if c == 0 {
				t.Errorf("PlanShards(%d): shard %d owns no nodes", n, s)
			}
		}
		if err := e.SetShards(p); err != nil {
			t.Fatalf("PlanShards(%d) plan rejected: %v", n, err)
		}
	}
}

func TestShardStressKillAndSnapshot(t *testing.T) {
	// Barrier/exchange stress for the race detector: a heavily sharded run
	// (more shards than the chain has natural cuts, scatter assignment)
	// with mid-run KillSwitch fault injection, KillPacket purges and
	// snapshots between Steps. Invariants — credit conservation, no
	// lost/duplicated flits (resident accounting), ownership consistency —
	// are audited every few cycles, and the surviving traffic must drain to
	// the same state as an identically-abused serial engine.
	run := func(shards int) (*Engine, []uint64) {
		cfg := Config{BufferDepth: 2, LinkDelay: 2, Acquire: AcquireAtomic}
		e, eps := chainScenario(cfg, 12)
		if shards > 1 {
			assign := make([]int, len(e.Nodes()))
			for i := range assign {
				assign[i] = i % shards
			}
			if err := e.SetShards(ShardPlan{N: shards, Assign: assign}); err != nil {
				panic(err)
			}
		}
		rng := rand.New(rand.NewSource(7))
		var stream []uint64
		nextID := uint64(1000)
		for c := 0; c < 400; c++ {
			if c == 60 {
				e.KillSwitch(e.Switches()[5])
			}
			if c == 120 {
				e.KillPacket(3)
			}
			if c%17 == 0 {
				src := rng.Intn(len(eps) - 1)
				dst := src + 1 + rng.Intn(len(eps)-1-src)
				nextID++
				e.Inject(eps[src], flit.NewPacket(&flit.Header{PacketID: nextID, Dst: geom.Coord{dst}}, 4))
			}
			e.Step()
			stream = append(stream, e.StateHash())
			if c%5 == 0 {
				if err := e.CheckInvariants(); err != nil {
					panic(fmt.Sprintf("cycle %d: %v", c, err))
				}
				_ = e.Snapshot()
			}
		}
		return e, stream
	}
	ref, want := run(1)
	for _, shards := range []int{2, 5, 8} {
		got, stream := run(shards)
		for i := range want {
			if stream[i] != want[i] {
				t.Fatalf("%d shards diverged at cycle %d: %#x vs %#x", shards, i+1, stream[i], want[i])
			}
		}
		if got.Resident() != ref.Resident() || got.Dropped() != ref.Dropped() {
			t.Fatalf("%d shards: resident=%d dropped=%d, serial resident=%d dropped=%d",
				shards, got.Resident(), got.Dropped(), ref.Resident(), ref.Dropped())
		}
		if err := got.CheckInvariants(); err != nil {
			t.Fatalf("%d shards: final invariants: %v", shards, err)
		}
	}
}

func TestShardBoundaryAccounting(t *testing.T) {
	e, _ := chainScenario(DefaultConfig(), 8)
	if b := e.BoundaryLinks(); b != 0 {
		t.Fatalf("serial engine reports %d boundary links", b)
	}
	if err := e.SetShards(e.PlanShards(2)); err != nil {
		t.Fatal(err)
	}
	if b := e.BoundaryLinks(); b == 0 {
		t.Fatal("2-shard chain reports no boundary links")
	}
	if e.ShardCount() != 2 {
		t.Fatalf("ShardCount = %d, want 2", e.ShardCount())
	}
}
