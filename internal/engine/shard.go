package engine

// Sharded execution: the node set is partitioned into shards that step the
// five simulation phases concurrently under a deterministic barrier protocol
// (DESIGN.md §10). Every shard owns a subset of the nodes; a link belongs to
// the shard of its *destination* node (so link delivery always lands flits
// into shard-local buffers), and all members of a physical channel must live
// in one shard (channel arbitration is then shard-local too). Allocation and
// traversal only ever touch ports of the node being visited, so with those
// two ownership rules the only state one shard touches on behalf of another
// is
//
//   - a credit return to an upstream output port (a flit left a buffer whose
//     feeding link crosses the boundary), and
//   - a flit push onto a boundary link's pipeline.
//
// Both are double-buffered: during a parallel section each shard appends
// them to private outboxes, and the engine applies the outboxes
// single-threaded at the next barrier. The barrier placement reproduces the
// serial engine's intra-cycle visibility exactly — see stepSharded — so the
// per-cycle StateHash stream is byte-identical to a serial run for any shard
// count, any node assignment and any goroutine schedule (asserted by the
// shard equivalence tests). Hook events (OnDeliver, OnDrop, OnForward) are
// buffered per shard during parallel sections and replayed single-threaded
// at the barriers in the serial engine's emission order.
//
// A one-shard engine (the default) runs the phases directly on the caller's
// goroutine with hooks firing inline; outboxes stay empty because nothing
// crosses a boundary. Serial execution is therefore the same code path, not
// a separate implementation kept in sync by hand.

import (
	"cmp"
	"fmt"
	"slices"
	"sync"

	"sr2201/internal/flit"
)

// ShardPlan assigns every node of an engine to one of N shards.
type ShardPlan struct {
	// N is the number of shards.
	N int
	// Assign maps node ID to shard index; its length must equal the number
	// of nodes in the engine. A nil Assign is valid only with N == 1 (every
	// node in shard 0).
	Assign []int
}

// engShard is the per-shard execution state: the owned element subsets (each
// kept in full-scan order), the shard-local scheduler lists and scratch
// buffers, per-cycle counter deltas folded into the engine at the end of each
// Step, and the cross-shard outboxes.
type engShard struct {
	e   *Engine
	idx int32

	// Owned elements, in full-scan (creation/ordKey) order.
	links     []*Link
	fullIn    []*InPort
	endpoints []*Node
	phys      []*PhysChannel
	nSwitchIn int

	// Active sets and pending buffers (scheduler.go), restricted to the
	// shard's elements.
	activeLinks  []*Link
	activeAlloc  []*InPort
	activeEject  []*Node
	activeInject []*Node
	pendLinks    []*Link
	pendAlloc    []*InPort
	pendEject    []*Node
	pendInject   []*Node

	// Scratch slices reused across cycles.
	reqScratch   []*InPort
	readyScratch []*InPort
	outScratch   []*OutPort
	physScratch  []*PhysChannel
	rsFree       []*routeState

	// Per-cycle deltas, folded into the engine's fields at the end of Step.
	moves    int64
	resident int64
	dropped  int64
	ctr      Counters

	// Cross-shard outboxes, applied single-threaded at barriers.
	creditOut []*OutPort // remote credit returns
	flitOut   []flitPush // pushes onto remote links
	// sunkCredits defers the credits freed by draining dropped packets to
	// the end of the traversal phase (DESIGN.md §10: the one intra-cycle
	// visibility point the kernel defines at a barrier instead of mid-scan,
	// so that it cannot depend on port scan order across shards).
	sunkCredits []*OutPort

	// Buffered hook events (multi-shard mode only).
	delivers []Delivery
	drops    []pendingDrop
	forwards []pendingForward
}

type flitPush struct {
	l *Link
	f flit.Flit
}

type pendingDrop struct {
	d   Drop
	key int64 // ordKey of the input port that dropped, the serial scan position
}

type pendingForward struct {
	from *Node
	out  int
	h    *flit.Header
	key  int64 // ordKey (switch ports) or node ID (endpoints)
}

// SetShards partitions the engine's nodes per the plan and rebuilds the
// shard execution state. It validates that the plan covers every node and
// that no physical channel spans two shards, and leaves the engine unchanged
// on error. Call between Steps only. The partition is pure execution
// strategy: simulation results are bit-for-bit independent of it, and it is
// deliberately excluded from snapshots and the topology fingerprint, so a
// checkpoint taken at one shard count restores at any other.
//
// Topology may still be grown afterwards (AddSwitch, Connect, ...): new
// nodes join shard 0. Creating a physical channel across two shards after
// SetShards is a misuse and panics at the next Step.
func (e *Engine) SetShards(p ShardPlan) error {
	if p.N < 1 {
		return fmt.Errorf("engine: shard count %d < 1", p.N)
	}
	if p.Assign == nil && p.N != 1 {
		return fmt.Errorf("engine: %d shards require an explicit assignment", p.N)
	}
	if p.Assign != nil && len(p.Assign) != len(e.nodes) {
		return fmt.Errorf("engine: shard assignment covers %d nodes, network has %d", len(p.Assign), len(e.nodes))
	}
	for id, s := range p.Assign {
		if s < 0 || s >= p.N {
			return fmt.Errorf("engine: node %d assigned to shard %d outside [0,%d)", id, s, p.N)
		}
	}
	for _, pc := range e.phys {
		want := pc.shardOf(p)
		for _, m := range pc.members[1:] {
			if pc.shardOf1(p, m) != want {
				return fmt.Errorf("engine: physical channel of %s.%d spans shards %d and %d",
					pc.members[0].node.Name, pc.members[0].idx, want, pc.shardOf1(p, m))
			}
		}
	}
	for id, nd := range e.nodes {
		if p.Assign == nil {
			nd.shard = 0
		} else {
			nd.shard = int32(p.Assign[id])
		}
	}
	e.shardN = p.N
	e.invalidateShards()
	e.ensureShards()
	return nil
}

func (pc *PhysChannel) shardOf(p ShardPlan) int { return pc.shardOf1(p, pc.members[0]) }

func (pc *PhysChannel) shardOf1(p ShardPlan, m *OutPort) int {
	if p.Assign == nil {
		return 0
	}
	return p.Assign[m.node.ID]
}

// PlanShards builds a generic weight-balanced plan: nodes in creation order
// are split into n contiguous blocks weighted by port count, with all
// members of a physical channel forced into the block of the earliest
// member. Topology builders with spatial knowledge (mdxb.ShardAssign) can do
// better; this planner only needs the engine.
func (e *Engine) PlanShards(n int) ShardPlan {
	if n < 1 {
		n = 1
	}
	if len(e.nodes) > 0 && n > len(e.nodes) {
		n = len(e.nodes)
	}
	assign := make([]int, len(e.nodes))
	if n == 1 {
		return ShardPlan{N: 1, Assign: assign}
	}
	// Union-find over nodes joined by shared physical channels.
	parent := make([]int, len(e.nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for _, pc := range e.phys {
		r := find(pc.members[0].node.ID)
		for _, m := range pc.members[1:] {
			parent[find(m.node.ID)] = r
		}
	}
	var total int64
	weight := func(nd *Node) int64 { return int64(len(nd.In) + len(nd.Out)) }
	for _, nd := range e.nodes {
		total += weight(nd)
	}
	for i := range assign {
		assign[i] = -1
	}
	var cum int64
	s := 0
	for i, nd := range e.nodes {
		for s+1 < n && cum*int64(n) >= total*int64(s+1) {
			s++
		}
		root := find(i)
		if assign[root] < 0 {
			assign[root] = s
		}
		assign[i] = assign[root]
		cum += weight(nd)
	}
	return ShardPlan{N: n, Assign: assign}
}

// ShardCount reports the configured number of shards (1 before SetShards).
func (e *Engine) ShardCount() int {
	if e.shardN < 1 {
		return 1
	}
	return e.shardN
}

// ShardOf reports the shard owning a node.
func (e *Engine) ShardOf(n *Node) int { return int(n.shard) }

// BoundaryLinks counts links whose endpoints live in different shards — the
// traffic that crosses the barrier outboxes each cycle.
func (e *Engine) BoundaryLinks() int {
	b := 0
	for _, l := range e.links {
		if l.from.node.shard != l.to.node.shard {
			b++
		}
	}
	return b
}

// invalidateShards discards the built shard structure (topology changed or a
// new plan was installed), spilling pooled route states so the next build
// keeps them. The per-element active flags are the authoritative scheduler
// state, so a rebuild between Steps is always safe.
func (e *Engine) invalidateShards() {
	if e.shards == nil {
		return
	}
	for _, s := range e.shards {
		e.poolSpill = append(e.poolSpill, s.rsFree...)
	}
	e.shards = nil
}

func (e *Engine) ensureShards() {
	if e.shards == nil {
		e.buildShards()
	}
}

func (e *Engine) buildShards() {
	n := e.shardN
	if n < 1 {
		n = 1
	}
	shards := make([]*engShard, n)
	for i := range shards {
		shards[i] = &engShard{e: e, idx: int32(i)}
	}
	for _, nd := range e.nodes {
		if int(nd.shard) >= n {
			panic(fmt.Sprintf("engine: node %q assigned to shard %d of %d (topology mutated after SetShards?)", nd.Name, nd.shard, n))
		}
		s := shards[nd.shard]
		if nd.Kind == KindEndpoint {
			s.endpoints = append(s.endpoints, nd)
		} else {
			s.fullIn = append(s.fullIn, nd.In...)
			s.nSwitchIn += len(nd.In)
		}
	}
	for _, l := range e.links {
		l.shard = l.to.node.shard
		shards[l.shard].links = append(shards[l.shard].links, l)
	}
	for _, pc := range e.phys {
		sh := pc.members[0].node.shard
		for _, m := range pc.members[1:] {
			if m.node.shard != sh {
				panic(fmt.Sprintf("engine: physical channel of %s.%d spans shards %d and %d (SharePhysical after SetShards?)",
					pc.members[0].node.Name, pc.members[0].idx, sh, m.node.shard))
			}
		}
		shards[sh].phys = append(shards[sh].phys, pc)
	}
	shards[0].rsFree = append(shards[0].rsFree, e.poolSpill...)
	e.poolSpill = e.poolSpill[:0]
	e.shards = shards
	e.direct = n == 1
	for _, s := range shards {
		s.rebuildActive()
	}
}

// rebuildActive reconstitutes the shard's active lists from the per-element
// flags. Every owned-element slice is in full-scan order, so the rebuilt
// lists are sorted by construction; pending buffers restart empty.
func (s *engShard) rebuildActive() {
	s.activeLinks = s.activeLinks[:0]
	for _, l := range s.links {
		if l.active {
			s.activeLinks = append(s.activeLinks, l)
		}
	}
	s.activeAlloc = s.activeAlloc[:0]
	for _, in := range s.fullIn {
		if in.active {
			s.activeAlloc = append(s.activeAlloc, in)
		}
	}
	s.activeEject = s.activeEject[:0]
	s.activeInject = s.activeInject[:0]
	for _, ep := range s.endpoints {
		if ep.ejectActive {
			s.activeEject = append(s.activeEject, ep)
		}
		if ep.injectActive {
			s.activeInject = append(s.activeInject, ep)
		}
	}
	s.pendLinks = s.pendLinks[:0]
	s.pendAlloc = s.pendAlloc[:0]
	s.pendEject = s.pendEject[:0]
	s.pendInject = s.pendInject[:0]
}

// poolFreeLen reports the total pooled route states across all shards (the
// snapshot encodes the pool as a single count).
func (e *Engine) poolFreeLen() int {
	n := len(e.poolSpill)
	for _, s := range e.shards {
		n += len(s.rsFree)
	}
	return n
}

// resetPool empties every shard's route-state pool and refills shard 0 with
// n fresh states (snapshot restore; the states' identities are immaterial).
func (e *Engine) resetPool(n int) {
	e.ensureShards()
	for _, s := range e.shards {
		s.rsFree = s.rsFree[:0]
	}
	e.poolSpill = e.poolSpill[:0]
	s0 := e.shards[0]
	for i := 0; i < n; i++ {
		s0.rsFree = append(s0.rsFree, &routeState{})
	}
}

// stepSharded runs one cycle's phases across all shards. The barrier
// placement mirrors the serial engine's intra-cycle visibility:
//
//	section 1 (parallel): deliver, eject, allocate — no shard reads another's
//	    credits (allocation never reads credits at all), so eject's
//	    cross-boundary credit returns wait in the outbox;
//	barrier: apply eject credits (serial makes them visible to traversal),
//	    replay OnDeliver then OnDrop in serial scan order;
//	section 2 (parallel): traverse — readiness reads only the local node's
//	    credits; cross-boundary returns from advancing tails go to the outbox;
//	barrier: apply traverse credits (serial makes them visible to injection),
//	    replay traversal OnForward;
//	section 3 (parallel): inject;
//	final: apply boundary flit pushes (nothing reads a link pipe after
//	    delivery, so pushes from sections 2 and 3 land here), replay
//	    injection OnForward.
func (e *Engine) stepSharded() {
	e.runShards(func(s *engShard) {
		s.deliverLinks()
		s.eject()
		s.allocate()
	})
	e.applyCredits()
	e.flushDelivers()
	e.flushDrops()
	e.runShards(func(s *engShard) { s.traverse() })
	e.applyCredits()
	e.flushForwards()
	e.runShards(func(s *engShard) { s.inject() })
	e.applyFlits()
	e.flushForwards()
}

// runShards executes fn on every shard concurrently: shard 0 on the calling
// goroutine, the rest on fresh goroutines, with a full join before
// returning. A panic on any shard is re-raised on the caller after the join.
func (e *Engine) runShards(fn func(*engShard)) {
	n := len(e.shards)
	var wg sync.WaitGroup
	wg.Add(n - 1)
	panics := make([]any, n)
	for i := 1; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			fn(e.shards[i])
		}(i)
	}
	func() {
		defer func() { panics[0] = recover() }()
		fn(e.shards[0])
	}()
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// foldShards folds every shard's per-cycle deltas into the engine fields.
// After the fold (i.e. whenever the engine is observable between Steps) the
// engine-level counters are exact, whatever the shard count.
func (e *Engine) foldShards() {
	for _, s := range e.shards {
		e.moves += s.moves
		e.resident += s.resident
		e.dropped += s.dropped
		s.moves, s.resident, s.dropped = 0, 0, 0
		e.ctr.LinkVisits += s.ctr.LinkVisits
		e.ctr.LinkVisitsSkipped += s.ctr.LinkVisitsSkipped
		e.ctr.SwitchPortVisits += s.ctr.SwitchPortVisits
		e.ctr.SwitchPortVisitsSkipped += s.ctr.SwitchPortVisitsSkipped
		e.ctr.EjectVisits += s.ctr.EjectVisits
		e.ctr.EjectVisitsSkipped += s.ctr.EjectVisitsSkipped
		e.ctr.InjectVisits += s.ctr.InjectVisits
		e.ctr.InjectVisitsSkipped += s.ctr.InjectVisitsSkipped
		e.ctr.RouteStatesAllocated += s.ctr.RouteStatesAllocated
		e.ctr.RouteStatesReused += s.ctr.RouteStatesReused
		s.ctr = Counters{}
	}
}

// pop removes the front flit of an input port owned by this shard, returning
// the freed buffer slot's credit upstream: immediately when the upstream
// port is shard-local (exactly the serial engine), via the outbox otherwise.
func (s *engShard) pop(p *InPort) flit.Flit {
	f := p.buf[0]
	copy(p.buf, p.buf[1:])
	p.buf = p.buf[:len(p.buf)-1]
	if p.upstream != nil {
		s.credit(p.upstream.from)
	}
	return f
}

// popSunk is pop for sunk-drain consumption: the credit is deferred to the
// end of the traversal phase even when local (see sunkCredits).
func (s *engShard) popSunk(p *InPort) flit.Flit {
	f := p.buf[0]
	copy(p.buf, p.buf[1:])
	p.buf = p.buf[:len(p.buf)-1]
	if p.upstream != nil {
		s.sunkCredits = append(s.sunkCredits, p.upstream.from)
	}
	return f
}

func (s *engShard) credit(op *OutPort) {
	if op.node.shard == s.idx {
		op.credits++
		return
	}
	s.creditOut = append(s.creditOut, op)
}

// applyCredits drains every shard's credit outbox. Credits are commutative
// counter increments, so the apply order cannot matter.
func (e *Engine) applyCredits() {
	for _, s := range e.shards {
		for _, op := range s.creditOut {
			op.credits++
		}
		s.creditOut = s.creditOut[:0]
	}
}

// applyFlits lands every shard's boundary-link pushes and activates the
// links in their owning shards. Each link has exactly one possible pusher
// per cycle (its fixed upstream port), so pipe entry order matches serial.
func (e *Engine) applyFlits() {
	for _, s := range e.shards {
		for i := range s.flitOut {
			p := &s.flitOut[i]
			p.l.pipe = append(p.l.pipe, linkEntry{f: p.f})
			e.shards[p.l.shard].activateLink(p.l)
			p.l, p.f.Header = nil, nil
		}
		s.flitOut = s.flitOut[:0]
	}
}

// Hook event buffering. In multi-shard mode events are gathered per shard
// during the parallel sections and replayed at the barrier, stably sorted by
// the element's serial full-scan position, which reproduces the serial
// engine's emission order exactly (each key emits at most one event per
// phase — except deliveries, where the stable sort preserves an endpoint's
// own pop order).

func (s *engShard) emitDeliver(ep *Node, h *flit.Header) {
	e := s.e
	if e.OnDeliver == nil {
		return
	}
	d := Delivery{At: ep, Header: h, Cycle: e.cycle}
	if e.direct {
		e.OnDeliver(d)
		return
	}
	s.delivers = append(s.delivers, d)
}

func (s *engShard) emitDrop(in *InPort, d Drop) {
	e := s.e
	if e.OnDrop == nil {
		return
	}
	if e.direct {
		e.OnDrop(d)
		return
	}
	s.drops = append(s.drops, pendingDrop{d: d, key: in.ordKey})
}

func (s *engShard) emitForward(from *Node, out int, h *flit.Header, key int64) {
	e := s.e
	if e.OnForward == nil {
		return
	}
	if e.direct {
		e.OnForward(from, out, h, e.cycle)
		return
	}
	s.forwards = append(s.forwards, pendingForward{from: from, out: out, h: h, key: key})
}

func (e *Engine) flushDelivers() {
	if e.OnDeliver == nil {
		return
	}
	buf := e.evDeliver[:0]
	for _, s := range e.shards {
		buf = append(buf, s.delivers...)
		s.delivers = s.delivers[:0]
	}
	stableSortBy(buf, func(d Delivery) int64 { return int64(d.At.ID) })
	for _, d := range buf {
		e.OnDeliver(d)
	}
	e.evDeliver = buf[:0]
}

func (e *Engine) flushDrops() {
	if e.OnDrop == nil {
		return
	}
	buf := e.evDrop[:0]
	for _, s := range e.shards {
		buf = append(buf, s.drops...)
		s.drops = s.drops[:0]
	}
	stableSortBy(buf, func(d pendingDrop) int64 { return d.key })
	for _, d := range buf {
		e.OnDrop(d.d)
	}
	e.evDrop = buf[:0]
}

func (e *Engine) flushForwards() {
	if e.OnForward == nil {
		return
	}
	buf := e.evForward[:0]
	for _, s := range e.shards {
		buf = append(buf, s.forwards...)
		s.forwards = s.forwards[:0]
	}
	stableSortBy(buf, func(f pendingForward) int64 { return f.key })
	for _, f := range buf {
		e.OnForward(f.from, f.out, f.h, e.cycle)
	}
	e.evForward = buf[:0]
}

func stableSortBy[T any](xs []T, key func(T) int64) {
	if len(xs) > 48 {
		slices.SortStableFunc(xs, func(a, b T) int { return cmp.Compare(key(a), key(b)) })
		return
	}
	// Typical case: a handful of events per cycle, already sorted within
	// each shard's run. Insertion sort is stable, which deliveries rely on.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && key(xs[j]) < key(xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
