// Package engine is a deterministic, cycle-driven, flit-level simulation
// kernel for switched interconnection networks.
//
// The kernel knows nothing about topology or routing policy: callers build a
// network out of switches (with a per-switch routing function) and endpoints
// (which inject and consume packets), connect ports with unidirectional
// links, and step the clock. The kernel implements the mechanisms the
// SR2201 paper's phenomena depend on:
//
//   - cut-through switching: the header flit claims output ports and the rest
//     of the packet streams through the opened circuit until the tail passes;
//   - credit-based flow control with finite per-input buffers, so a blocked
//     packet holds channels across switches (the wormhole-like regime in
//     which every deadlock in the paper arises);
//   - multi-port acquisition for broadcast fan-out, either incremental
//     (hold-and-wait, as in hardware and paper Fig. 5) or atomic;
//   - physical-channel multiplexing so several output ports (virtual
//     channels) can share one link's bandwidth, used by the torus baseline.
//
// Everything is iterated in fixed index order with per-resource round-robin
// arbiters, so simulations are bit-for-bit reproducible.
package engine

import (
	"fmt"
	"sort"

	"sr2201/internal/flit"
)

// AcquireMode selects how a packet that needs several output ports at one
// switch (a broadcast fan-out) claims them.
type AcquireMode uint8

const (
	// AcquireAtomic grants either all requested ports or none, in order of
	// header arrival, with the ports of an older unsatisfiable request
	// reserved against younger ones (no starvation). This models the SR2201
	// crossbar, whose broadcast replay engages the whole fan simultaneously
	// ("one-by-one in order of arrival"). Hold-and-wait within one switch is
	// eliminated — but not across switches, which is where the paper's
	// deadlocks live (a fan that did start still stalls on downstream
	// credits while holding every branch).
	AcquireAtomic AcquireMode = iota
	// AcquireIncremental grants whatever requested ports are free each cycle
	// and holds them while waiting for the rest (hold-and-wait inside a
	// single switch, too). Kept as an ablation: it additionally deadlocks
	// two broadcast requests meeting at the serialized crossbar itself.
	AcquireIncremental
)

// Config collects kernel-wide parameters.
type Config struct {
	// BufferDepth is the number of flit slots in each input port buffer.
	// Depths smaller than the packet size give wormhole-like blocking.
	BufferDepth int
	// LinkDelay is the number of cycles a flit spends on a link. Minimum 1.
	LinkDelay int
	// Acquire selects fan-out acquisition semantics.
	Acquire AcquireMode
	// EjectRate caps the flits an endpoint consumes per cycle; 0 = unlimited.
	EjectRate int
}

// DefaultConfig returns the configuration used throughout the experiments:
// 2-flit buffers (well below the default 8-flit packets, i.e. wormhole-like),
// single-cycle links, atomic per-switch acquisition, unlimited ejection.
func DefaultConfig() Config {
	return Config{BufferDepth: 2, LinkDelay: 1, Acquire: AcquireAtomic}
}

func (c *Config) normalize() {
	if c.BufferDepth < 1 {
		c.BufferDepth = 1
	}
	if c.LinkDelay < 1 {
		c.LinkDelay = 1
	}
	if c.EjectRate < 0 {
		c.EjectRate = 0
	}
}

// NodeKind distinguishes switching elements from traffic endpoints.
type NodeKind uint8

const (
	// KindSwitch is a routing element (crossbar or relay switch).
	KindSwitch NodeKind = iota
	// KindEndpoint is a PE-side network interface: it injects packets and
	// consumes everything that arrives.
	KindEndpoint
)

// Decision is the result of routing one packet header at one switch input.
type Decision struct {
	// Outs lists the output ports the packet must acquire. len(Outs) > 1
	// replicates the packet (broadcast fan-out).
	Outs []int
	// Transform, if non-nil, rewrites the header on the copies forwarded out
	// of this switch (RC-bit transitions). It must return a fresh header and
	// must not mutate its argument.
	Transform func(*flit.Header) *flit.Header
	// Drop discards the packet at this switch (counted, reported via OnDrop).
	Drop bool
	// DropReason annotates a drop for diagnostics.
	DropReason string
}

// RouteFunc computes the forwarding decision for a packet header arriving on
// input port in of switch n. It must be deterministic and side-effect free.
// A returned error drops the packet and surfaces through OnDrop.
type RouteFunc func(n *Node, in int, h *flit.Header) (Decision, error)

// PortRef names one directed port of one node.
type PortRef struct {
	Node *Node
	Port int
}

func (p PortRef) String() string {
	if p.Node == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s.%d", p.Node.Name, p.Port)
}

// routeState tracks the active packet on one switch input port from header
// grant until the tail flit leaves.
type routeState struct {
	header    *flit.Header
	outs      []int
	granted   []bool
	nGranted  int
	transform func(*flit.Header) *flit.Header
	sink      bool // dropping: consume flits until Last without forwarding
	// since is the cycle the header was routed; atomic allocation serves
	// requests oldest-first ("in order of arrival").
	since int64
}

func (rs *routeState) allGranted() bool { return rs.nGranted == len(rs.outs) }

// InPort is a switch or endpoint input: a FIFO flit buffer fed by one link.
type InPort struct {
	node *Node
	idx  int
	buf  []*flit.Flit
	cap  int
	// upstream is the link that feeds this port (nil if unconnected); used to
	// return credits when a flit leaves the buffer.
	upstream *Link
	// route is the active cut-through state, nil when no packet is mid-flight.
	route *routeState
	// recvHeader remembers the header of the packet currently being consumed
	// by an endpoint (set when the header flit is ejected).
	recvHeader *flit.Header
	// BlockedCycles counts cycles in which this port had a routed or routable
	// packet that failed to advance.
	BlockedCycles int64
}

// Buffered reports the number of flits currently queued at the port.
func (p *InPort) Buffered() int { return len(p.buf) }

// front returns the flit at the head of the buffer, or nil.
func (p *InPort) front() *flit.Flit {
	if len(p.buf) == 0 {
		return nil
	}
	return p.buf[0]
}

func (p *InPort) pop() *flit.Flit {
	f := p.buf[0]
	copy(p.buf, p.buf[1:])
	p.buf = p.buf[:len(p.buf)-1]
	if p.upstream != nil {
		p.upstream.from.creditReturn()
	}
	return f
}

// OutPort is a switch or endpoint output: the upstream end of one link, with
// the credit counter for the downstream buffer and cut-through ownership.
type OutPort struct {
	node *Node
	idx  int
	link *Link
	// owner is the input port whose packet currently holds this output, or
	// nil when the port is free.
	owner *InPort
	// credits counts free slots in the downstream input buffer.
	credits int
	// phys, when non-nil, is the shared physical channel this port sends on.
	phys *PhysChannel
	// arb is the round-robin pointer over requesting input ports.
	arb int
	// BusyCycles counts cycles in which a flit crossed this port.
	BusyCycles int64
	// ConflictCycles counts allocation cycles in which two or more packets
	// requested this port simultaneously (the paper's "network conflicts").
	ConflictCycles int64
	// lastReqCycle / conflictCounted implement the per-cycle conflict count.
	lastReqCycle    int64
	conflictCounted bool
}

func (o *OutPort) creditReturn() { o.credits++ }

// Owned reports whether the port is currently held by a packet.
func (o *OutPort) Owned() bool { return o.owner != nil }

// Node is one network element: a switch with a routing function, or an
// endpoint.
type Node struct {
	ID   int
	Name string
	Kind NodeKind
	// Meta carries topology-level payload (coordinates, fault tables, ...)
	// for the routing function.
	Meta any
	// Failed marks a faulty switch: any flit arriving at it is dropped. The
	// fault-tolerant routing layer must keep traffic away from failed nodes;
	// drops here indicate a routing bug (or an intentionally unreachable
	// destination) and are reported via OnDrop.
	Failed bool

	In    []*InPort
	Out   []*OutPort
	route RouteFunc

	eng *Engine

	// Endpoint state.
	injectQ  []*flit.Flit
	Injected int64 // packets handed to Inject
	Sent     int64 // packets whose tail left the endpoint
	Received int64 // packets fully consumed at this endpoint
	sendSeq  int   // flits of the current packet already sent
}

// InjectQueueLen reports the flits waiting in the endpoint's source queue.
func (n *Node) InjectQueueLen() int { return len(n.injectQ) }

// Link is a unidirectional flit pipeline between an output and an input port.
type Link struct {
	from  *OutPort
	to    *InPort
	delay int
	// pipe holds in-flight flits; age counts elapsed cycles.
	pipe []linkEntry
}

type linkEntry struct {
	f   *flit.Flit
	age int
}

// PhysChannel is a group of output ports sharing one flit per cycle of
// physical bandwidth (virtual channels over one wire).
type PhysChannel struct {
	members []*OutPort
	arb     int
	// grants is rebuilt each cycle: the member allowed to send.
	granted *OutPort
}

// Delivery reports one packet consumed at an endpoint.
type Delivery struct {
	At     *Node
	Header *flit.Header
	Cycle  int64
}

// Drop reports one packet discarded inside the network.
type Drop struct {
	At     *Node
	Header *flit.Header
	Cycle  int64
	Reason string
}

// Engine owns the network and the clock.
type Engine struct {
	cfg   Config
	nodes []*Node
	// switchOrder/endpointOrder cache the per-kind iteration sequences.
	switches  []*Node
	endpoints []*Node
	links     []*Link
	phys      []*PhysChannel

	cycle    int64
	moves    int64 // cumulative flit movements (link entries + ejections)
	resident int64 // flits alive in queues, buffers and links

	dropped int64

	// OnDeliver, if non-nil, observes every packet consumption.
	OnDeliver func(Delivery)
	// OnDrop, if non-nil, observes every discarded packet.
	OnDrop func(Drop)
	// OnForward, if non-nil, observes every header flit leaving a node, for
	// route tracing. from is the node, out the output port index.
	OnForward func(from *Node, out int, h *flit.Header, cycle int64)
}

// New creates an empty network with the given configuration.
func New(cfg Config) *Engine {
	cfg.normalize()
	return &Engine{cfg: cfg}
}

// Config returns the engine's (normalized) configuration.
func (e *Engine) Config() Config { return e.cfg }

// AddSwitch creates a switch with the given number of bidirectional ports and
// routing function.
func (e *Engine) AddSwitch(name string, ports int, route RouteFunc, meta any) *Node {
	if ports < 1 {
		panic(fmt.Sprintf("engine: switch %q needs at least one port", name))
	}
	if route == nil {
		panic(fmt.Sprintf("engine: switch %q needs a routing function", name))
	}
	n := &Node{ID: len(e.nodes), Name: name, Kind: KindSwitch, Meta: meta, route: route, eng: e}
	for i := 0; i < ports; i++ {
		n.In = append(n.In, &InPort{node: n, idx: i, cap: e.cfg.BufferDepth})
		n.Out = append(n.Out, &OutPort{node: n, idx: i, lastReqCycle: -1})
	}
	e.nodes = append(e.nodes, n)
	e.switches = append(e.switches, n)
	return n
}

// AddEndpoint creates a single-port traffic endpoint.
func (e *Engine) AddEndpoint(name string, meta any) *Node {
	n := &Node{ID: len(e.nodes), Name: name, Kind: KindEndpoint, Meta: meta, eng: e}
	n.In = append(n.In, &InPort{node: n, idx: 0, cap: e.cfg.BufferDepth})
	n.Out = append(n.Out, &OutPort{node: n, idx: 0, lastReqCycle: -1})
	e.nodes = append(e.nodes, n)
	e.endpoints = append(e.endpoints, n)
	return n
}

// Nodes returns all nodes in creation order.
func (e *Engine) Nodes() []*Node { return e.nodes }

// Endpoints returns all endpoints in creation order.
func (e *Engine) Endpoints() []*Node { return e.endpoints }

// Switches returns all switches in creation order.
func (e *Engine) Switches() []*Node { return e.switches }

// ConnectDirected wires a's output port ap to b's input port bp.
func (e *Engine) ConnectDirected(a *Node, ap int, b *Node, bp int) *Link {
	out := a.Out[ap]
	in := b.In[bp]
	if out.link != nil {
		panic(fmt.Sprintf("engine: output %s.%d already connected", a.Name, ap))
	}
	if in.upstream != nil {
		panic(fmt.Sprintf("engine: input %s.%d already connected", b.Name, bp))
	}
	l := &Link{from: out, to: in, delay: e.cfg.LinkDelay}
	out.link = l
	out.credits = in.cap
	in.upstream = l
	e.links = append(e.links, l)
	return l
}

// Connect wires port ap of a to port bp of b in both directions.
func (e *Engine) Connect(a *Node, ap int, b *Node, bp int) {
	e.ConnectDirected(a, ap, b, bp)
	e.ConnectDirected(b, bp, a, ap)
}

// SharePhysical groups output ports onto one physical channel with a combined
// bandwidth of one flit per cycle.
func (e *Engine) SharePhysical(ports ...*OutPort) *PhysChannel {
	pc := &PhysChannel{members: ports}
	for _, p := range ports {
		if p.phys != nil {
			panic(fmt.Sprintf("engine: output %s.%d already in a physical channel", p.node.Name, p.idx))
		}
		p.phys = pc
	}
	e.phys = append(e.phys, pc)
	return pc
}

// Inject queues a packet's flits at an endpoint for transmission.
func (e *Engine) Inject(ep *Node, flits []*flit.Flit) {
	if ep.Kind != KindEndpoint {
		panic(fmt.Sprintf("engine: Inject on non-endpoint %q", ep.Name))
	}
	if len(flits) == 0 {
		return
	}
	if flits[0].Header == nil {
		panic("engine: first injected flit must be a header")
	}
	flits[0].Header.InjectedAt = e.cycle
	ep.injectQ = append(ep.injectQ, flits...)
	ep.Injected++
	e.resident += int64(len(flits))
}

// Cycle reports the current simulation time.
func (e *Engine) Cycle() int64 { return e.cycle }

// Moves reports cumulative flit movements; the deadlock watchdog watches it.
func (e *Engine) Moves() int64 { return e.moves }

// Resident reports the number of flits alive anywhere in the network.
func (e *Engine) Resident() int64 { return e.resident }

// Dropped reports the number of packets discarded so far.
func (e *Engine) Dropped() int64 { return e.dropped }

// Quiescent reports whether the network holds no flits at all.
func (e *Engine) Quiescent() bool { return e.resident == 0 }

// Step advances the simulation by one cycle. Phase order (fixed): link
// delivery, ejection, allocation, traversal, injection.
func (e *Engine) Step() {
	e.deliverLinks()
	e.eject()
	e.allocate()
	e.traverse()
	e.inject()
	e.cycle++
}

// RunUntilQuiescent steps until the network drains or maxCycles elapse.
// It returns true if the network drained.
func (e *Engine) RunUntilQuiescent(maxCycles int64) bool {
	for i := int64(0); i < maxCycles; i++ {
		if e.Quiescent() {
			return true
		}
		e.Step()
	}
	return e.Quiescent()
}

// deliverLinks ages in-flight flits and lands the ones whose delay elapsed.
// Credits guarantee the destination buffer has room.
func (e *Engine) deliverLinks() {
	for _, l := range e.links {
		if len(l.pipe) == 0 {
			continue
		}
		kept := l.pipe[:0]
		for _, en := range l.pipe {
			en.age++
			if en.age >= l.delay {
				if len(l.to.buf) >= l.to.cap {
					panic(fmt.Sprintf("engine: buffer overflow at %s.%d (credit accounting bug)", l.to.node.Name, l.to.idx))
				}
				l.to.buf = append(l.to.buf, en.f)
			} else {
				kept = append(kept, en)
			}
		}
		l.pipe = kept
	}
}

// eject consumes arrived flits at endpoints.
func (e *Engine) eject() {
	for _, ep := range e.endpoints {
		in := ep.In[0]
		budget := e.cfg.EjectRate
		for len(in.buf) > 0 {
			if budget == 0 && e.cfg.EjectRate != 0 {
				break
			}
			f := in.pop()
			e.moves++
			e.resident--
			if f.Header != nil {
				in.recvHeader = f.Header
			}
			if f.Last {
				ep.Received++
				if e.OnDeliver != nil {
					e.OnDeliver(Delivery{At: ep, Header: in.recvHeader, Cycle: e.cycle})
				}
				in.recvHeader = nil
			}
			if e.cfg.EjectRate != 0 {
				budget--
			}
		}
	}
}

// request is one input port competing for output ports this cycle.
type request struct {
	in *InPort
}

// allocate routes fresh headers and arbitrates output ports.
func (e *Engine) allocate() {
	// Gather requests. A request is an input port whose front flit is an
	// unserved header, or whose routeState still has ungranted outputs.
	var requests []request
	for _, sw := range e.switches {
		for _, in := range sw.In {
			if in.route == nil {
				f := in.front()
				if f == nil {
					continue
				}
				if f.Header == nil {
					panic(fmt.Sprintf("engine: mid-packet flit %s at %s.%d with no route state", f, sw.Name, in.idx))
				}
				rs, ok := e.routeHeader(sw, in, f.Header)
				if !ok {
					continue // dropped
				}
				in.route = rs
			}
			if in.route.sink {
				continue
			}
			if !in.route.allGranted() {
				requests = append(requests, request{in: in})
			}
		}
	}
	if len(requests) == 0 {
		return
	}

	// Count requesters per output port for conflict statistics.
	for _, rq := range requests {
		rs := rq.in.route
		for i, o := range rs.outs {
			if rs.granted[i] {
				continue
			}
			op := rq.in.node.Out[o]
			if op.owner != nil {
				continue
			}
			op.arbRequests(e.cycle)
		}
	}

	switch e.cfg.Acquire {
	case AcquireAtomic:
		e.allocateAtomic(requests)
	default:
		e.allocateIncremental(requests)
	}
}

// arbRequests bumps the conflict statistic bookkeeping; called once per
// requester per cycle. Two or more calls in one cycle mean a conflict.
func (o *OutPort) arbRequests(cycle int64) {
	if o.lastReqCycle == cycle {
		if !o.conflictCounted {
			o.ConflictCycles++
			o.conflictCounted = true
		}
		return
	}
	o.lastReqCycle = cycle
	o.conflictCounted = false
}

// allocateIncremental grants each free requested output to one requester
// (round-robin), letting fan-outs hold partial sets.
func (e *Engine) allocateIncremental(requests []request) {
	// Build per-output requester lists in request order.
	perOut := map[*OutPort][]*InPort{}
	var order []*OutPort
	for _, rq := range requests {
		rs := rq.in.route
		for i, o := range rs.outs {
			if rs.granted[i] {
				continue
			}
			op := rq.in.node.Out[o]
			if op.owner != nil {
				continue
			}
			if _, seen := perOut[op]; !seen {
				order = append(order, op)
			}
			perOut[op] = append(perOut[op], rq.in)
		}
	}
	for _, op := range order {
		reqs := perOut[op]
		winner := reqs[op.arb%len(reqs)]
		op.arb++
		op.owner = winner
		rs := winner.route
		for i, o := range rs.outs {
			if winner.node.Out[o] == op {
				rs.granted[i] = true
				rs.nGranted++
			}
		}
	}
}

// allocateAtomic grants a request only when every output it needs is free,
// serving requests oldest-first ("in order of arrival"). The wanted ports of
// an unsatisfiable older request are reserved for the rest of the cycle so
// younger single-port traffic cannot starve a waiting fan-out.
//
// Same-cycle ties are broken by a per-switch priority rotation derived from
// the node ID: independent hardware arbiters do not share a global order, and
// a globally consistent tie-break would (unrealistically) hand one broadcast
// every crossbar at once, masking the cyclic-acquisition deadlock of paper
// Fig. 5.
func (e *Engine) allocateAtomic(requests []request) {
	tieKey := func(in *InPort) int {
		return (in.idx + in.node.ID) % len(in.node.In)
	}
	sort.SliceStable(requests, func(i, j int) bool {
		a, b := requests[i].in, requests[j].in
		if a.route.since != b.route.since {
			return a.route.since < b.route.since
		}
		if a.node != b.node {
			return a.node.ID < b.node.ID
		}
		return tieKey(a) < tieKey(b)
	})
	reserved := map[*OutPort]bool{}
	for _, rq := range requests {
		rs := rq.in.route
		if rs.nGranted > 0 {
			// An atomic request never holds a partial set, so this cannot
			// happen unless the mode changed mid-run.
			continue
		}
		ok := true
		for _, o := range rs.outs {
			op := rq.in.node.Out[o]
			if op.owner != nil || reserved[op] {
				ok = false
				break
			}
		}
		if !ok {
			for _, o := range rs.outs {
				reserved[rq.in.node.Out[o]] = true
			}
			continue
		}
		for i, o := range rs.outs {
			rq.in.node.Out[o].owner = rq.in
			rs.granted[i] = true
			rs.nGranted++
		}
	}
}

// routeHeader runs the switch routing function and validates the decision.
// The bool result is false when the packet is dropped.
func (e *Engine) routeHeader(sw *Node, in *InPort, h *flit.Header) (*routeState, bool) {
	if sw.Failed {
		return e.sinkPacket(sw, in, h, "arrived at failed switch"), true
	}
	dec, err := sw.route(sw, in.idx, h)
	if err != nil {
		return e.sinkPacket(sw, in, h, err.Error()), true
	}
	if dec.Drop {
		reason := dec.DropReason
		if reason == "" {
			reason = "dropped by routing function"
		}
		return e.sinkPacket(sw, in, h, reason), true
	}
	if len(dec.Outs) == 0 {
		return e.sinkPacket(sw, in, h, "routing function returned no outputs"), true
	}
	seen := map[int]bool{}
	for _, o := range dec.Outs {
		if o < 0 || o >= len(sw.Out) {
			panic(fmt.Sprintf("engine: switch %q routed to invalid port %d", sw.Name, o))
		}
		if sw.Out[o].link == nil {
			panic(fmt.Sprintf("engine: switch %q routed to unconnected port %d", sw.Name, o))
		}
		if seen[o] {
			panic(fmt.Sprintf("engine: switch %q routed to duplicate port %d", sw.Name, o))
		}
		seen[o] = true
	}
	return &routeState{
		header:    h,
		outs:      dec.Outs,
		granted:   make([]bool, len(dec.Outs)),
		transform: dec.Transform,
		since:     e.cycle,
	}, true
}

// sinkPacket puts the input port into drop mode for the current packet.
func (e *Engine) sinkPacket(sw *Node, in *InPort, h *flit.Header, reason string) *routeState {
	e.dropped++
	if e.OnDrop != nil {
		e.OnDrop(Drop{At: sw, Header: h, Cycle: e.cycle, Reason: reason})
	}
	return &routeState{header: h, sink: true}
}

// traverse moves one flit per fully-granted input across its switch.
func (e *Engine) traverse() {
	// Phase A: find ready inputs and stage physical-channel requests.
	type ready struct {
		in *InPort
	}
	var readies []ready
	for _, pc := range e.phys {
		pc.granted = nil
	}
	physWants := map[*PhysChannel][]*OutPort{}
	var physOrder []*PhysChannel
	for _, sw := range e.switches {
		for _, in := range sw.In {
			rs := in.route
			if rs == nil {
				continue
			}
			f := in.front()
			if rs.sink {
				// Drain dropped packets at one flit per cycle.
				if f != nil {
					e.consumeSunk(in, f)
				}
				continue
			}
			if !rs.allGranted() {
				if f != nil {
					in.BlockedCycles++
				}
				continue
			}
			if f == nil {
				continue // waiting for upstream flits; not "blocked" locally
			}
			ok := true
			for _, o := range rs.outs {
				op := sw.Out[o]
				if op.credits < 1 {
					ok = false
					break
				}
			}
			if !ok {
				in.BlockedCycles++
				continue
			}
			// Stage physical channel requests.
			for _, o := range rs.outs {
				op := sw.Out[o]
				if op.phys != nil {
					if _, seen := physWants[op.phys]; !seen {
						physOrder = append(physOrder, op.phys)
					}
					physWants[op.phys] = append(physWants[op.phys], op)
				}
			}
			readies = append(readies, ready{in: in})
		}
	}
	// Phase B: physical-channel arbitration, round-robin over member index.
	for _, pc := range physOrder {
		wants := physWants[pc]
		// Pick the requesting member closest after the arb pointer.
		best := -1
		bestRank := len(pc.members) + 1
		for _, op := range wants {
			mi := pc.memberIndex(op)
			rank := (mi - pc.arb + len(pc.members)) % len(pc.members)
			if rank < bestRank {
				bestRank = rank
				best = mi
			}
		}
		if best >= 0 {
			pc.granted = pc.members[best]
			pc.arb = (best + 1) % len(pc.members)
		}
	}
	// Phase C: move flits for inputs whose outputs all won their channels.
	for _, r := range readies {
		in := r.in
		rs := in.route
		committed := true
		for _, o := range rs.outs {
			op := in.node.Out[o]
			if op.phys != nil && op.phys.granted != op {
				committed = false
				break
			}
		}
		if !committed {
			in.BlockedCycles++
			continue
		}
		f := in.pop()
		e.moves++
		// Fan-out duplicates flits: resident grows by branches-1.
		e.resident += int64(len(rs.outs) - 1)
		for _, o := range rs.outs {
			op := in.node.Out[o]
			branch := *f
			if f.Header != nil {
				h := f.Header
				if rs.transform != nil {
					h = rs.transform(h)
				} else if len(rs.outs) > 1 {
					h = h.Clone()
				}
				branch.Header = h
				if e.OnForward != nil {
					e.OnForward(in.node, o, h, e.cycle)
				}
			}
			op.link.pipe = append(op.link.pipe, linkEntry{f: &branch})
			op.credits--
			op.BusyCycles++
		}
		if f.Last {
			for _, o := range rs.outs {
				in.node.Out[o].owner = nil
			}
			in.route = nil
		}
	}
}

// consumeSunk drains one flit of a dropped packet.
func (e *Engine) consumeSunk(in *InPort, f *flit.Flit) {
	in.pop()
	e.moves++
	e.resident--
	if f.Last {
		in.route = nil
	}
}

// inject moves endpoint source-queue flits onto their links.
func (e *Engine) inject() {
	for _, ep := range e.endpoints {
		if len(ep.injectQ) == 0 {
			continue
		}
		out := ep.Out[0]
		if out.link == nil {
			panic(fmt.Sprintf("engine: endpoint %q has no outbound link", ep.Name))
		}
		if out.credits < 1 {
			continue
		}
		if out.phys != nil && out.phys.granted != out {
			// Endpoints on shared channels arbitrate like switches; for
			// simplicity they send only on otherwise-idle cycles.
			if out.phys.granted != nil {
				continue
			}
		}
		f := ep.injectQ[0]
		ep.injectQ = ep.injectQ[1:]
		if f.Header != nil && e.OnForward != nil {
			e.OnForward(ep, 0, f.Header, e.cycle)
		}
		out.link.pipe = append(out.link.pipe, linkEntry{f: f})
		out.credits--
		out.BusyCycles++
		e.moves++
		if f.Last {
			ep.Sent++
		}
	}
}

func (pc *PhysChannel) memberIndex(op *OutPort) int {
	for i, m := range pc.members {
		if m == op {
			return i
		}
	}
	panic("engine: output port not a member of its physical channel")
}
