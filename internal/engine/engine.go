// Package engine is a deterministic, cycle-driven, flit-level simulation
// kernel for switched interconnection networks.
//
// The kernel knows nothing about topology or routing policy: callers build a
// network out of switches (with a per-switch routing function) and endpoints
// (which inject and consume packets), connect ports with unidirectional
// links, and step the clock. The kernel implements the mechanisms the
// SR2201 paper's phenomena depend on:
//
//   - cut-through switching: the header flit claims output ports and the rest
//     of the packet streams through the opened circuit until the tail passes;
//   - credit-based flow control with finite per-input buffers, so a blocked
//     packet holds channels across switches (the wormhole-like regime in
//     which every deadlock in the paper arises);
//   - multi-port acquisition for broadcast fan-out, either incremental
//     (hold-and-wait, as in hardware and paper Fig. 5) or atomic;
//   - physical-channel multiplexing so several output ports (virtual
//     channels) can share one link's bandwidth, used by the torus baseline.
//
// Everything is iterated in fixed index order with per-resource round-robin
// arbiters, so simulations are bit-for-bit reproducible. The hot path visits
// only active elements each cycle (see scheduler.go); the active sets are
// exact predicates of each phase's no-op conditions and are kept in index
// order, so skipping idle elements cannot change any outcome. A run can
// additionally be partitioned into spatial shards that step concurrently
// under a deterministic barrier protocol (see shard.go); results are
// bit-for-bit independent of the shard count.
package engine

import (
	"cmp"
	"fmt"
	"slices"

	"sr2201/internal/flit"
)

// AcquireMode selects how a packet that needs several output ports at one
// switch (a broadcast fan-out) claims them.
type AcquireMode uint8

const (
	// AcquireAtomic grants either all requested ports or none, in order of
	// header arrival, with the ports of an older unsatisfiable request
	// reserved against younger ones (no starvation). This models the SR2201
	// crossbar, whose broadcast replay engages the whole fan simultaneously
	// ("one-by-one in order of arrival"). Hold-and-wait within one switch is
	// eliminated — but not across switches, which is where the paper's
	// deadlocks live (a fan that did start still stalls on downstream
	// credits while holding every branch).
	AcquireAtomic AcquireMode = iota
	// AcquireIncremental grants whatever requested ports are free each cycle
	// and holds them while waiting for the rest (hold-and-wait inside a
	// single switch, too). Kept as an ablation: it additionally deadlocks
	// two broadcast requests meeting at the serialized crossbar itself.
	AcquireIncremental
)

// Config collects kernel-wide parameters.
type Config struct {
	// BufferDepth is the number of flit slots in each input port buffer.
	// Depths smaller than the packet size give wormhole-like blocking.
	BufferDepth int
	// LinkDelay is the number of cycles a flit spends on a link. Minimum 1.
	LinkDelay int
	// Acquire selects fan-out acquisition semantics.
	Acquire AcquireMode
	// EjectRate caps the flits an endpoint consumes per cycle; 0 = unlimited.
	EjectRate int
	// DisableActiveSet forces the kernel to scan every link, port and
	// endpoint each cycle instead of visiting only active elements. The two
	// modes are bit-for-bit equivalent (asserted by the differential tests);
	// the full scan exists as the reference implementation and for
	// debugging, not for production runs.
	DisableActiveSet bool
}

// DefaultConfig returns the configuration used throughout the experiments:
// 2-flit buffers (well below the default 8-flit packets, i.e. wormhole-like),
// single-cycle links, atomic per-switch acquisition, unlimited ejection.
func DefaultConfig() Config {
	return Config{BufferDepth: 2, LinkDelay: 1, Acquire: AcquireAtomic}
}

func (c *Config) normalize() {
	if c.BufferDepth < 1 {
		c.BufferDepth = 1
	}
	if c.LinkDelay < 1 {
		c.LinkDelay = 1
	}
	if c.EjectRate < 0 {
		c.EjectRate = 0
	}
}

// NodeKind distinguishes switching elements from traffic endpoints.
type NodeKind uint8

const (
	// KindSwitch is a routing element (crossbar or relay switch).
	KindSwitch NodeKind = iota
	// KindEndpoint is a PE-side network interface: it injects packets and
	// consumes everything that arrives.
	KindEndpoint
)

// Decision is the result of routing one packet header at one switch input.
type Decision struct {
	// Outs lists the output ports the packet must acquire. len(Outs) > 1
	// replicates the packet (broadcast fan-out). The kernel copies the
	// slice, so routing functions may reuse its backing array.
	Outs []int
	// Transform, if non-nil, rewrites the header on the copies forwarded out
	// of this switch (RC-bit transitions). It must return a fresh header and
	// must not mutate its argument.
	Transform func(*flit.Header) *flit.Header
	// Drop discards the packet at this switch (counted, reported via OnDrop).
	Drop bool
	// DropReason annotates a drop for diagnostics.
	DropReason string
	// Provisional marks a decision that binds for one allocation round only:
	// if the single requested output is not granted this cycle, the kernel
	// discards the state and routes the header again next cycle, letting an
	// adaptive policy choose a different output. Requires len(Outs) == 1.
	// The packet's arrival stamp is preserved across re-routes, so the
	// oldest-first arbiter still serves it by its true age.
	Provisional bool
}

// RouteFunc computes the forwarding decision for a packet header arriving on
// input port in of switch n. It must be deterministic and side-effect free.
// (Sharded runs additionally rely on this: routing functions may be called
// from several goroutines at once, one per shard.) A returned error drops
// the packet and surfaces through OnDrop.
type RouteFunc func(n *Node, in int, h *flit.Header) (Decision, error)

// PortRef names one directed port of one node.
type PortRef struct {
	Node *Node
	Port int
}

func (p PortRef) String() string {
	if p.Node == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s.%d", p.Node.Name, p.Port)
}

// routeState tracks the active packet on one switch input port from header
// grant until the tail flit leaves. States are pooled per shard; the outs
// and granted slices are reused across packets.
type routeState struct {
	header    *flit.Header
	outs      []int
	granted   []bool
	nGranted  int
	transform func(*flit.Header) *flit.Header
	sink      bool // dropping: consume flits until Last without forwarding
	// since is the cycle the header was routed; atomic allocation serves
	// requests oldest-first ("in order of arrival"). A provisional re-route
	// keeps the original stamp.
	since int64
	// provisional marks a Decision.Provisional route: discarded and recomputed
	// each cycle until its single output is granted.
	provisional bool
}

func (rs *routeState) allGranted() bool { return rs.nGranted == len(rs.outs) }

// InPort is a switch or endpoint input: a FIFO flit buffer fed by one link.
// Flits are stored by value: they are copied as they move, so the steady
// state allocates nothing per hop.
type InPort struct {
	node *Node
	idx  int
	buf  []flit.Flit
	cap  int
	// upstream is the link that feeds this port (nil if unconnected); used to
	// return credits when a flit leaves the buffer.
	upstream *Link
	// route is the active cut-through state, nil when no packet is mid-flight.
	route *routeState
	// recvHeader remembers the header of the packet currently being consumed
	// by an endpoint (set when the header flit is ejected).
	recvHeader *flit.Header
	// active marks membership in the owning shard's active input-port list
	// (switch inports only); idle counts consecutive workless visits
	// (eviction hysteresis); ordKey fixes the list's iteration order to
	// match the full switch/port scan.
	active bool
	idle   uint8
	ordKey int64
	// BlockedCycles counts cycles in which this port had a routed or routable
	// packet that failed to advance.
	BlockedCycles int64
}

// Buffered reports the number of flits currently queued at the port.
func (p *InPort) Buffered() int { return len(p.buf) }

// front returns the flit at the head of the buffer, or nil. The pointer
// aliases the buffer slot: it must not be retained across pops or appends.
func (p *InPort) front() *flit.Flit {
	if len(p.buf) == 0 {
		return nil
	}
	return &p.buf[0]
}

// OutPort is a switch or endpoint output: the upstream end of one link, with
// the credit counter for the downstream buffer and cut-through ownership.
type OutPort struct {
	node *Node
	idx  int
	link *Link
	// owner is the input port whose packet currently holds this output, or
	// nil when the port is free.
	owner *InPort
	// credits counts free slots in the downstream input buffer.
	credits int
	// phys, when non-nil, is the shared physical channel this port sends on.
	phys *PhysChannel
	// arb is the round-robin pointer over requesting input ports.
	arb int
	// reservedCycle implements atomic allocation's anti-starvation
	// reservation without a per-cycle map: the port counts as reserved when
	// reservedCycle equals the current cycle.
	reservedCycle int64
	// pendStamp/pend gather this cycle's incremental-mode requesters without
	// a per-cycle map; pend's backing array is reused across cycles.
	pendStamp int64
	pend      []*InPort
	// BusyCycles counts cycles in which a flit crossed this port.
	BusyCycles int64
	// ConflictCycles counts allocation cycles in which two or more packets
	// requested this port simultaneously (the paper's "network conflicts").
	ConflictCycles int64
	// lastReqCycle / conflictCounted implement the per-cycle conflict count.
	lastReqCycle    int64
	conflictCounted bool
}

func (o *OutPort) creditReturn() { o.credits++ }

// Owned reports whether the port is currently held by a packet.
func (o *OutPort) Owned() bool { return o.owner != nil }

// Node is one network element: a switch with a routing function, or an
// endpoint.
type Node struct {
	ID   int
	Name string
	Kind NodeKind
	// Meta carries topology-level payload (coordinates, fault tables, ...)
	// for the routing function.
	Meta any
	// Failed marks a faulty switch: any flit arriving at it is dropped. The
	// fault-tolerant routing layer must keep traffic away from failed nodes;
	// drops here indicate a routing bug (or an intentionally unreachable
	// destination) and are reported via OnDrop.
	Failed bool

	In    []*InPort
	Out   []*OutPort
	route RouteFunc

	eng *Engine
	// shard is the index of the shard that owns this node (shard.go).
	shard int32

	// Endpoint state. The source queue is injectQ[injectHead:]; consuming
	// advances the head and the buffer is rewound once empty, so steady
	// traffic reuses one allocation instead of leaking front capacity.
	injectQ      []flit.Flit
	injectHead   int
	ejectActive  bool  // membership in the active ejection list
	injectActive bool  // membership in the active injection list
	ejectIdle    uint8 // eviction hysteresis for the ejection list
	injectIdle   uint8 // eviction hysteresis for the injection list
	Injected     int64 // packets handed to Inject
	Sent         int64 // packets whose tail left the endpoint
	Received     int64 // packets fully consumed at this endpoint
}

// InjectQueueLen reports the flits waiting in the endpoint's source queue.
func (n *Node) InjectQueueLen() int { return len(n.injectQ) - n.injectHead }

// pendingInject is the live region of the endpoint's source queue.
func (n *Node) pendingInject() []flit.Flit { return n.injectQ[n.injectHead:] }

// Link is a unidirectional flit pipeline between an output and an input port.
type Link struct {
	id    int
	from  *OutPort
	to    *InPort
	delay int
	// pipe holds in-flight flits; age counts elapsed cycles.
	pipe []linkEntry
	// active marks membership in the owning shard's active link list; idle
	// counts consecutive empty visits (eviction hysteresis, see
	// scheduler.go).
	active bool
	idle   uint8
	// shard caches the owning shard — the shard of the destination node, so
	// delivery always lands flits into shard-local buffers.
	shard int32
}

type linkEntry struct {
	f   flit.Flit
	age int
}

// PhysChannel is a group of output ports sharing one flit per cycle of
// physical bandwidth (virtual channels over one wire). All member ports must
// belong to nodes of one shard (enforced by SetShards), which keeps the
// channel arbitration shard-local.
type PhysChannel struct {
	members []*OutPort
	arb     int
	// granted is the member allowed to send, valid only when grantedCycle is
	// the current cycle (so idle channels need no per-cycle reset).
	granted      *OutPort
	grantedCycle int64
	// wantStamp/wants gather this cycle's requesting members without a
	// per-cycle map.
	wantStamp int64
	wants     []*OutPort
}

// Delivery reports one packet consumed at an endpoint.
type Delivery struct {
	At     *Node
	Header *flit.Header
	Cycle  int64
}

// Drop reports one packet discarded inside the network.
type Drop struct {
	At     *Node
	Header *flit.Header
	Cycle  int64
	Reason string
}

// Engine owns the network and the clock.
type Engine struct {
	cfg   Config
	nodes []*Node
	// switchOrder/endpointOrder cache the per-kind iteration sequences.
	switches  []*Node
	endpoints []*Node
	links     []*Link
	phys      []*PhysChannel
	nSwitchIn int // total switch input ports, for the visit counters
	// fullIn lists every switch input port in full-scan order, for the
	// DisableActiveSet reference mode and snapshot/hash walks.
	fullIn []*InPort

	cycle    int64
	moves    int64 // cumulative flit movements (link entries + ejections)
	resident int64 // flits alive in queues, buffers and links

	dropped int64

	// Sharded execution (shard.go): shards holds the built per-shard
	// scheduler/scratch state, rebuilt lazily after topology growth or
	// SetShards; shardN is the configured shard count (0 or 1 = serial);
	// direct marks the one-shard path (phases on the caller's goroutine,
	// hooks inline, outboxes empty). poolSpill preserves pooled route states
	// across shard rebuilds; the ev* slices are barrier event-flush scratch.
	shardN    int
	shards    []*engShard
	direct    bool
	poolSpill []*routeState
	evDeliver []Delivery
	evDrop    []pendingDrop
	evForward []pendingForward

	ctr Counters

	// OnDeliver, if non-nil, observes every packet consumption.
	OnDeliver func(Delivery)
	// OnDrop, if non-nil, observes every discarded packet.
	OnDrop func(Drop)
	// OnForward, if non-nil, observes every header flit leaving a node, for
	// route tracing. from is the node, out the output port index.
	OnForward func(from *Node, out int, h *flit.Header, cycle int64)
	// PreCycle, if non-nil, runs at the top of every Step, before any phase
	// and before the cycle counter advances. Dynamic-fault schedules use it
	// to mutate the network at an exact cycle (KillSwitch, retransmissions);
	// the hook must be deterministic for the reproducibility guarantee to
	// hold.
	PreCycle func(cycle int64)
	// PostCycle, if non-nil, runs at the bottom of every Step, after every
	// phase and after the cycle counter has advanced. It is the only hook
	// from which whole-network surgery (KillSwitch, KillPacket) is safe
	// *after* observing the cycle's outcome — the recovery layer uses it to
	// detect a stalled network and purge a deadlock victim between cycles.
	// Like PreCycle, the hook must be deterministic.
	PostCycle func(cycle int64)
}

// New creates an empty network with the given configuration.
func New(cfg Config) *Engine {
	cfg.normalize()
	return &Engine{cfg: cfg}
}

// Config returns the engine's (normalized) configuration.
func (e *Engine) Config() Config { return e.cfg }

// AddSwitch creates a switch with the given number of bidirectional ports and
// routing function.
func (e *Engine) AddSwitch(name string, ports int, route RouteFunc, meta any) *Node {
	if ports < 1 {
		panic(fmt.Sprintf("engine: switch %q needs at least one port", name))
	}
	if route == nil {
		panic(fmt.Sprintf("engine: switch %q needs a routing function", name))
	}
	n := &Node{ID: len(e.nodes), Name: name, Kind: KindSwitch, Meta: meta, route: route, eng: e}
	for i := 0; i < ports; i++ {
		n.In = append(n.In, &InPort{node: n, idx: i, cap: e.cfg.BufferDepth, ordKey: int64(n.ID)<<32 | int64(i)})
		n.Out = append(n.Out, &OutPort{node: n, idx: i, lastReqCycle: -1, reservedCycle: -1, pendStamp: -1})
	}
	e.nodes = append(e.nodes, n)
	e.switches = append(e.switches, n)
	e.nSwitchIn += ports
	e.fullIn = append(e.fullIn, n.In...)
	e.invalidateShards()
	return n
}

// AddEndpoint creates a single-port traffic endpoint.
func (e *Engine) AddEndpoint(name string, meta any) *Node {
	n := &Node{ID: len(e.nodes), Name: name, Kind: KindEndpoint, Meta: meta, eng: e}
	n.In = append(n.In, &InPort{node: n, idx: 0, cap: e.cfg.BufferDepth, ordKey: int64(n.ID) << 32})
	n.Out = append(n.Out, &OutPort{node: n, idx: 0, lastReqCycle: -1, reservedCycle: -1, pendStamp: -1})
	e.nodes = append(e.nodes, n)
	e.endpoints = append(e.endpoints, n)
	e.invalidateShards()
	return n
}

// Nodes returns all nodes in creation order.
func (e *Engine) Nodes() []*Node { return e.nodes }

// Endpoints returns all endpoints in creation order.
func (e *Engine) Endpoints() []*Node { return e.endpoints }

// Switches returns all switches in creation order.
func (e *Engine) Switches() []*Node { return e.switches }

// ConnectDirected wires a's output port ap to b's input port bp.
func (e *Engine) ConnectDirected(a *Node, ap int, b *Node, bp int) *Link {
	out := a.Out[ap]
	in := b.In[bp]
	if out.link != nil {
		panic(fmt.Sprintf("engine: output %s.%d already connected", a.Name, ap))
	}
	if in.upstream != nil {
		panic(fmt.Sprintf("engine: input %s.%d already connected", b.Name, bp))
	}
	l := &Link{id: len(e.links), from: out, to: in, delay: e.cfg.LinkDelay}
	out.link = l
	out.credits = in.cap
	in.upstream = l
	e.links = append(e.links, l)
	e.invalidateShards()
	return l
}

// Connect wires port ap of a to port bp of b in both directions.
func (e *Engine) Connect(a *Node, ap int, b *Node, bp int) {
	e.ConnectDirected(a, ap, b, bp)
	e.ConnectDirected(b, bp, a, ap)
}

// SharePhysical groups output ports onto one physical channel with a combined
// bandwidth of one flit per cycle.
func (e *Engine) SharePhysical(ports ...*OutPort) *PhysChannel {
	pc := &PhysChannel{members: ports, grantedCycle: -1, wantStamp: -1}
	for _, p := range ports {
		if p.phys != nil {
			panic(fmt.Sprintf("engine: output %s.%d already in a physical channel", p.node.Name, p.idx))
		}
		p.phys = pc
	}
	e.phys = append(e.phys, pc)
	e.invalidateShards()
	return pc
}

// Inject queues a packet's flits at an endpoint for transmission. The flits
// are copied into the endpoint's queue; the caller keeps ownership of the
// slice and the Flit structs.
// InjectPacket queues a size-flit packet headed by h at the endpoint. It is
// equivalent to Inject(ep, flit.NewPacket(h, size)) but builds the flits
// in place in the endpoint's source queue, allocating nothing.
func (e *Engine) InjectPacket(ep *Node, h *flit.Header, size int) {
	if ep.Kind != KindEndpoint {
		panic(fmt.Sprintf("engine: Inject on non-endpoint %q", ep.Name))
	}
	h.InjectedAt = e.cycle
	ep.injectQ = flit.AppendPacket(ep.injectQ, h, size)
	ep.Injected++
	e.resident += int64(size)
	e.activateInject(ep)
}

func (e *Engine) Inject(ep *Node, flits []*flit.Flit) {
	if ep.Kind != KindEndpoint {
		panic(fmt.Sprintf("engine: Inject on non-endpoint %q", ep.Name))
	}
	if len(flits) == 0 {
		return
	}
	if flits[0].Header == nil {
		panic("engine: first injected flit must be a header")
	}
	flits[0].Header.InjectedAt = e.cycle
	for _, f := range flits {
		ep.injectQ = append(ep.injectQ, *f)
	}
	ep.Injected++
	e.resident += int64(len(flits))
	e.activateInject(ep)
}

// Cycle reports the current simulation time.
func (e *Engine) Cycle() int64 { return e.cycle }

// Moves reports cumulative flit movements; the deadlock watchdog watches it.
func (e *Engine) Moves() int64 { return e.moves }

// Resident reports the number of flits alive anywhere in the network.
func (e *Engine) Resident() int64 { return e.resident }

// Dropped reports the number of packets discarded so far.
func (e *Engine) Dropped() int64 { return e.dropped }

// Quiescent reports whether the network holds no flits at all.
func (e *Engine) Quiescent() bool { return e.resident == 0 }

// Step advances the simulation by one cycle. Phase order (fixed): the
// PreCycle hook, then link delivery, ejection, allocation, traversal,
// injection. With more than one shard the phases run concurrently across
// shards under the barrier protocol of shard.go; the observable state after
// Step is bit-for-bit identical either way.
func (e *Engine) Step() {
	e.ensureShards()
	if e.PreCycle != nil {
		e.PreCycle(e.cycle)
		e.ensureShards()
	}
	if e.direct {
		s := e.shards[0]
		s.deliverLinks()
		s.eject()
		s.allocate()
		s.traverse()
		s.inject()
	} else {
		e.stepSharded()
	}
	e.foldShards()
	e.cycle++
	e.ctr.Cycles++
	if e.PostCycle != nil {
		e.PostCycle(e.cycle)
	}
}

// RunUntilQuiescent steps until the network drains or maxCycles elapse.
// It returns true if the network drained.
func (e *Engine) RunUntilQuiescent(maxCycles int64) bool {
	for i := int64(0); i < maxCycles; i++ {
		if e.Quiescent() {
			return true
		}
		e.Step()
	}
	return e.Quiescent()
}

// deliverLinks ages in-flight flits and lands the ones whose delay elapsed.
// Credits guarantee the destination buffer has room. Links are owned by
// their destination node's shard, so every landing is shard-local.
func (s *engShard) deliverLinks() {
	s.mergeLinks()
	if s.e.cfg.DisableActiveSet {
		for _, l := range s.links {
			s.deliverLink(l)
		}
		s.ctr.LinkVisits += int64(len(s.links))
		return
	}
	kept := s.activeLinks[:0]
	for _, l := range s.activeLinks {
		s.deliverLink(l)
		if len(l.pipe) > 0 {
			l.idle = 0
			kept = append(kept, l)
		} else if l.idle < idleEvictAfter {
			l.idle++
			kept = append(kept, l)
		} else {
			l.idle = 0
			l.active = false
		}
	}
	s.ctr.LinkVisits += int64(len(s.activeLinks))
	s.ctr.LinkVisitsSkipped += int64(len(s.links) - len(s.activeLinks))
	s.activeLinks = kept
}

func (s *engShard) deliverLink(l *Link) {
	if len(l.pipe) == 0 {
		return
	}
	kept := l.pipe[:0]
	landed := false
	for i := range l.pipe {
		en := l.pipe[i]
		en.age++
		if en.age >= l.delay {
			if len(l.to.buf) >= l.to.cap {
				panic(fmt.Sprintf("engine: buffer overflow at %s.%d (credit accounting bug)", l.to.node.Name, l.to.idx))
			}
			l.to.buf = append(l.to.buf, en.f)
			landed = true
		} else {
			kept = append(kept, en)
		}
	}
	l.pipe = kept
	if landed {
		if l.to.node.Kind == KindSwitch {
			s.activateAlloc(l.to)
		} else {
			s.activateEject(l.to.node)
		}
	}
}

// eject consumes arrived flits at endpoints.
func (s *engShard) eject() {
	s.mergeEject()
	if s.e.cfg.DisableActiveSet {
		for _, ep := range s.endpoints {
			s.ejectAt(ep)
		}
		s.ctr.EjectVisits += int64(len(s.endpoints))
		return
	}
	kept := s.activeEject[:0]
	for _, ep := range s.activeEject {
		s.ejectAt(ep)
		if len(ep.In[0].buf) > 0 {
			ep.ejectIdle = 0
			kept = append(kept, ep)
		} else if ep.ejectIdle < idleEvictAfter {
			ep.ejectIdle++
			kept = append(kept, ep)
		} else {
			ep.ejectIdle = 0
			ep.ejectActive = false
		}
	}
	s.ctr.EjectVisits += int64(len(s.activeEject))
	s.ctr.EjectVisitsSkipped += int64(len(s.endpoints) - len(s.activeEject))
	s.activeEject = kept
}

func (s *engShard) ejectAt(ep *Node) {
	e := s.e
	in := ep.In[0]
	budget := e.cfg.EjectRate
	for len(in.buf) > 0 {
		if budget == 0 && e.cfg.EjectRate != 0 {
			break
		}
		f := s.pop(in)
		s.moves++
		s.resident--
		if f.Header != nil {
			in.recvHeader = f.Header
		}
		if f.Last {
			ep.Received++
			s.emitDeliver(ep, in.recvHeader)
			in.recvHeader = nil
		}
		if e.cfg.EjectRate != 0 {
			budget--
		}
	}
}

// allocate routes fresh headers and arbitrates output ports. Allocation is
// node-local — requests, grants, reservations and conflict counts all live
// on the ports of the node being visited — so shards allocate independently.
func (s *engShard) allocate() {
	e := s.e
	s.mergeAlloc()
	// Gather requests. A request is an input port whose front flit is an
	// unserved header, or whose routeState still has ungranted outputs.
	requests := s.reqScratch[:0]
	if e.cfg.DisableActiveSet {
		for _, in := range s.fullIn {
			_, wants := s.allocPrep(in)
			if wants {
				requests = append(requests, in)
			}
		}
		s.ctr.SwitchPortVisits += int64(s.nSwitchIn)
	} else {
		kept := s.activeAlloc[:0]
		for _, in := range s.activeAlloc {
			live, wants := s.allocPrep(in)
			if live {
				in.idle = 0
				kept = append(kept, in)
			} else if in.idle < idleEvictAfter {
				in.idle++
				kept = append(kept, in)
			} else {
				in.idle = 0
				in.active = false
			}
			if wants {
				requests = append(requests, in)
			}
		}
		s.ctr.SwitchPortVisits += int64(len(s.activeAlloc))
		s.ctr.SwitchPortVisitsSkipped += int64(s.nSwitchIn - len(s.activeAlloc))
		s.activeAlloc = kept
	}
	s.reqScratch = requests
	if len(requests) == 0 {
		return
	}

	// Count requesters per output port for conflict statistics.
	for _, in := range requests {
		rs := in.route
		for i, o := range rs.outs {
			if rs.granted[i] {
				continue
			}
			op := in.node.Out[o]
			if op.owner != nil {
				continue
			}
			op.arbRequests(e.cycle)
		}
	}

	switch e.cfg.Acquire {
	case AcquireAtomic:
		s.allocateAtomic(requests)
	default:
		s.allocateIncremental(requests)
	}
}

// allocPrep routes the buffered header of an idle port, then reports whether
// the port remains live (holds route state or flits) and whether it competes
// for output ports this cycle.
func (s *engShard) allocPrep(in *InPort) (live, wants bool) {
	if in.route == nil {
		f := in.front()
		if f == nil {
			return false, false
		}
		if f.Header == nil {
			panic(fmt.Sprintf("engine: mid-packet flit %s at %s.%d with no route state", f, in.node.Name, in.idx))
		}
		in.route = s.routeHeader(in.node, in, f.Header)
		// Keep the active-set invariant (route state ⇒ listed) even when
		// this prep ran from a full scan, so the modes can be toggled
		// mid-run. A no-op when the port is already listed.
		s.activateAlloc(in)
	}
	rs := in.route
	if rs.provisional && rs.nGranted == 0 {
		// The provisional decision bound for one allocation round and lost.
		// Route the header again so an adaptive policy may pick a different
		// output, preserving the original arrival stamp: the oldest-first
		// arbiter keeps seeing the packet's true age, so re-routing can
		// never starve it. With no grants issued the header flit is still at
		// the front of the buffer.
		since := rs.since
		s.freeRouteState(rs)
		rs = s.routeHeader(in.node, in, in.front().Header)
		rs.since = since
		in.route = rs
	}
	return true, !rs.sink && !rs.allGranted()
}

// arbRequests bumps the conflict statistic bookkeeping; called once per
// requester per cycle. Two or more calls in one cycle mean a conflict.
func (o *OutPort) arbRequests(cycle int64) {
	if o.lastReqCycle == cycle {
		if !o.conflictCounted {
			o.ConflictCycles++
			o.conflictCounted = true
		}
		return
	}
	o.lastReqCycle = cycle
	o.conflictCounted = false
}

// allocateIncremental grants each free requested output to one requester
// (round-robin), letting fan-outs hold partial sets.
func (s *engShard) allocateIncremental(requests []*InPort) {
	// Build per-output requester lists in request order.
	order := s.outScratch[:0]
	for _, in := range requests {
		rs := in.route
		for i, o := range rs.outs {
			if rs.granted[i] {
				continue
			}
			op := in.node.Out[o]
			if op.owner != nil {
				continue
			}
			if op.pendStamp != s.e.cycle {
				op.pendStamp = s.e.cycle
				op.pend = op.pend[:0]
				order = append(order, op)
			}
			op.pend = append(op.pend, in)
		}
	}
	for _, op := range order {
		winner := op.pend[op.arb%len(op.pend)]
		op.arb++
		op.owner = winner
		rs := winner.route
		for i, o := range rs.outs {
			if winner.node.Out[o] == op {
				rs.granted[i] = true
				rs.nGranted++
			}
		}
	}
	s.outScratch = order[:0]
}

// allocateAtomic grants a request only when every output it needs is free,
// serving requests oldest-first ("in order of arrival"). The wanted ports of
// an unsatisfiable older request are reserved for the rest of the cycle so
// younger single-port traffic cannot starve a waiting fan-out.
//
// Same-cycle ties are broken by a per-switch priority rotation derived from
// the node ID: independent hardware arbiters do not share a global order, and
// a globally consistent tie-break would (unrealistically) hand one broadcast
// every crossbar at once, masking the cyclic-acquisition deadlock of paper
// Fig. 5.
//
// The sort key (since, node ID, rotated port) is a total order over all
// requests in the network, and grants touch only the request's own node, so
// sorting any node-respecting subset — a shard's — grants exactly what the
// global sort would.
func (s *engShard) allocateAtomic(requests []*InPort) {
	e := s.e
	tieKey := func(in *InPort) int {
		return (in.idx + in.node.ID) % len(in.node.In)
	}
	slices.SortStableFunc(requests, func(a, b *InPort) int {
		if a.route.since != b.route.since {
			return cmp.Compare(a.route.since, b.route.since)
		}
		if a.node != b.node {
			return cmp.Compare(a.node.ID, b.node.ID)
		}
		return cmp.Compare(tieKey(a), tieKey(b))
	})
	for _, in := range requests {
		rs := in.route
		if rs.nGranted > 0 {
			// An atomic request never holds a partial set, so this cannot
			// happen unless the mode changed mid-run.
			continue
		}
		ok := true
		for _, o := range rs.outs {
			op := in.node.Out[o]
			if op.owner != nil || op.reservedCycle == e.cycle {
				ok = false
				break
			}
		}
		if !ok {
			for _, o := range rs.outs {
				in.node.Out[o].reservedCycle = e.cycle
			}
			continue
		}
		for i, o := range rs.outs {
			in.node.Out[o].owner = in
			rs.granted[i] = true
			rs.nGranted++
		}
	}
}

// routeHeader runs the switch routing function and validates the decision,
// returning the port's new cut-through state (a sink state when the packet
// is dropped).
func (s *engShard) routeHeader(sw *Node, in *InPort, h *flit.Header) *routeState {
	if sw.Failed {
		return s.sinkPacket(sw, in, h, "arrived at failed switch")
	}
	dec, err := sw.route(sw, in.idx, h)
	if err != nil {
		return s.sinkPacket(sw, in, h, err.Error())
	}
	if dec.Drop {
		reason := dec.DropReason
		if reason == "" {
			reason = "dropped by routing function"
		}
		return s.sinkPacket(sw, in, h, reason)
	}
	if len(dec.Outs) == 0 {
		return s.sinkPacket(sw, in, h, "routing function returned no outputs")
	}
	for i, o := range dec.Outs {
		if o < 0 || o >= len(sw.Out) {
			panic(fmt.Sprintf("engine: switch %q routed to invalid port %d", sw.Name, o))
		}
		if sw.Out[o].link == nil {
			panic(fmt.Sprintf("engine: switch %q routed to unconnected port %d", sw.Name, o))
		}
		for _, prev := range dec.Outs[:i] {
			if prev == o {
				panic(fmt.Sprintf("engine: switch %q routed to duplicate port %d", sw.Name, o))
			}
		}
	}
	if dec.Provisional && len(dec.Outs) != 1 {
		panic(fmt.Sprintf("engine: switch %q returned a provisional decision with %d outputs (provisional requires exactly 1)", sw.Name, len(dec.Outs)))
	}
	rs := s.newRouteState()
	rs.header = h
	rs.outs = append(rs.outs, dec.Outs...)
	for range dec.Outs {
		rs.granted = append(rs.granted, false)
	}
	rs.transform = dec.Transform
	rs.since = s.e.cycle
	rs.provisional = dec.Provisional
	return rs
}

// sinkPacket puts the input port into drop mode for the current packet.
func (s *engShard) sinkPacket(sw *Node, in *InPort, h *flit.Header, reason string) *routeState {
	s.dropped++
	s.emitDrop(in, Drop{At: sw, Header: h, Cycle: s.e.cycle, Reason: reason})
	rs := s.newRouteState()
	rs.header = h
	rs.sink = true
	return rs
}

// newRouteState takes a state from the shard's pool (or allocates).
func (s *engShard) newRouteState() *routeState {
	if n := len(s.rsFree); n > 0 {
		rs := s.rsFree[n-1]
		s.rsFree = s.rsFree[:n-1]
		s.ctr.RouteStatesReused++
		return rs
	}
	s.ctr.RouteStatesAllocated++
	return &routeState{}
}

// freeRouteState clears a completed state and returns it to the shard pool.
func (s *engShard) freeRouteState(rs *routeState) {
	rs.header = nil
	rs.transform = nil
	rs.outs = rs.outs[:0]
	rs.granted = rs.granted[:0]
	rs.nGranted = 0
	rs.sink = false
	rs.since = 0
	rs.provisional = false
	s.rsFree = append(s.rsFree, rs)
}

// freeRouteStateAt returns rs to the pool of the shard owning nd. For the
// purge paths only — safe from single-threaded contexts (between Steps,
// PreCycle/PostCycle), never from within a phase.
func (e *Engine) freeRouteStateAt(nd *Node, rs *routeState) {
	e.ensureShards()
	e.shards[nd.shard].freeRouteState(rs)
}

// traverse moves one flit per fully-granted input across its switch. Every
// read is node-local (readiness checks the node's own credit counters,
// physical channels are shard-co-located); the writes that can cross the
// boundary — credit returns from advancing tails and pushes onto outgoing
// links — go to the shard outboxes.
func (s *engShard) traverse() {
	e := s.e
	// Phase A: find ready inputs and stage physical-channel requests.
	readies := s.readyScratch[:0]
	physOrder := s.physScratch[:0]
	ports := s.activeAlloc
	if e.cfg.DisableActiveSet {
		ports = s.fullIn
	}
	for _, in := range ports {
		rs := in.route
		if rs == nil {
			continue
		}
		f := in.front()
		if rs.sink {
			// Drain dropped packets at one flit per cycle.
			if f != nil {
				s.consumeSunk(in, *f)
			}
			continue
		}
		if !rs.allGranted() {
			if f != nil {
				in.BlockedCycles++
			}
			continue
		}
		if f == nil {
			continue // waiting for upstream flits; not "blocked" locally
		}
		ok := true
		for _, o := range rs.outs {
			op := in.node.Out[o]
			if op.credits < 1 {
				ok = false
				break
			}
		}
		if !ok {
			in.BlockedCycles++
			continue
		}
		// Stage physical channel requests.
		for _, o := range rs.outs {
			op := in.node.Out[o]
			if pc := op.phys; pc != nil {
				if pc.wantStamp != e.cycle {
					pc.wantStamp = e.cycle
					pc.wants = pc.wants[:0]
					physOrder = append(physOrder, pc)
				}
				pc.wants = append(pc.wants, op)
			}
		}
		readies = append(readies, in)
	}
	// Phase B: physical-channel arbitration, round-robin over member index.
	for _, pc := range physOrder {
		// Pick the requesting member closest after the arb pointer.
		best := -1
		bestRank := len(pc.members) + 1
		for _, op := range pc.wants {
			mi := pc.memberIndex(op)
			rank := (mi - pc.arb + len(pc.members)) % len(pc.members)
			if rank < bestRank {
				bestRank = rank
				best = mi
			}
		}
		if best >= 0 {
			pc.granted = pc.members[best]
			pc.grantedCycle = e.cycle
			pc.arb = (best + 1) % len(pc.members)
		}
	}
	// Phase C: move flits for inputs whose outputs all won their channels.
	for _, in := range readies {
		rs := in.route
		committed := true
		for _, o := range rs.outs {
			op := in.node.Out[o]
			if op.phys != nil && !op.phys.grants(op, e.cycle) {
				committed = false
				break
			}
		}
		if !committed {
			in.BlockedCycles++
			continue
		}
		f := s.pop(in)
		s.moves++
		// Fan-out duplicates flits: resident grows by branches-1.
		s.resident += int64(len(rs.outs) - 1)
		for _, o := range rs.outs {
			op := in.node.Out[o]
			branch := f
			if f.Header != nil {
				h := f.Header
				if rs.transform != nil {
					h = rs.transform(h)
				} else if len(rs.outs) > 1 {
					h = h.Clone()
				}
				branch.Header = h
				s.emitForward(in.node, o, h, in.ordKey)
			}
			s.pushLink(op.link, branch)
			op.credits--
			op.BusyCycles++
		}
		if f.Last {
			for _, o := range rs.outs {
				in.node.Out[o].owner = nil
			}
			s.freeRouteState(rs)
			in.route = nil
		}
	}
	// Credits freed by sunk drains become visible at the end of the
	// traversal phase (DESIGN.md §10), so their effect cannot depend on the
	// scan order of ports — which a shard partition does not preserve.
	for _, op := range s.sunkCredits {
		s.credit(op)
	}
	s.sunkCredits = s.sunkCredits[:0]
	s.readyScratch = readies[:0]
	s.physScratch = physOrder[:0]
}

// pushLink appends a flit to a link's pipeline: directly when the link is
// shard-local, via the outbox when its destination lives in another shard.
func (s *engShard) pushLink(l *Link, f flit.Flit) {
	if l.shard == s.idx {
		l.pipe = append(l.pipe, linkEntry{f: f})
		s.activateLink(l)
		return
	}
	s.flitOut = append(s.flitOut, flitPush{l: l, f: f})
}

// grants reports whether the channel granted this port in the given cycle.
func (pc *PhysChannel) grants(op *OutPort, cycle int64) bool {
	return pc.granted == op && pc.grantedCycle == cycle
}

// consumeSunk drains one flit of a dropped packet.
func (s *engShard) consumeSunk(in *InPort, f flit.Flit) {
	s.popSunk(in)
	s.moves++
	s.resident--
	if f.Last {
		s.freeRouteState(in.route)
		in.route = nil
	}
}

// inject moves endpoint source-queue flits onto their links.
func (s *engShard) inject() {
	s.mergeInject()
	if s.e.cfg.DisableActiveSet {
		for _, ep := range s.endpoints {
			s.injectAt(ep)
		}
		s.ctr.InjectVisits += int64(len(s.endpoints))
		return
	}
	kept := s.activeInject[:0]
	for _, ep := range s.activeInject {
		s.injectAt(ep)
		if ep.InjectQueueLen() > 0 {
			ep.injectIdle = 0
			kept = append(kept, ep)
		} else if ep.injectIdle < idleEvictAfter {
			ep.injectIdle++
			kept = append(kept, ep)
		} else {
			ep.injectIdle = 0
			ep.injectActive = false
		}
	}
	s.ctr.InjectVisits += int64(len(s.activeInject))
	s.ctr.InjectVisitsSkipped += int64(len(s.endpoints) - len(s.activeInject))
	s.activeInject = kept
}

func (s *engShard) injectAt(ep *Node) {
	e := s.e
	if ep.injectHead >= len(ep.injectQ) {
		return
	}
	out := ep.Out[0]
	if out.link == nil {
		panic(fmt.Sprintf("engine: endpoint %q has no outbound link", ep.Name))
	}
	if out.credits < 1 {
		return
	}
	if pc := out.phys; pc != nil && !pc.grants(out, e.cycle) {
		// Endpoints on shared channels arbitrate like switches; for
		// simplicity they send only on otherwise-idle cycles.
		if pc.grantedCycle == e.cycle && pc.granted != nil {
			return
		}
	}
	f := ep.injectQ[ep.injectHead]
	ep.injectHead++
	if ep.injectHead == len(ep.injectQ) {
		ep.injectQ = ep.injectQ[:0]
		ep.injectHead = 0
	}
	if f.Header != nil {
		s.emitForward(ep, 0, f.Header, int64(ep.ID))
	}
	s.pushLink(out.link, f)
	out.credits--
	out.BusyCycles++
	s.moves++
	if f.Last {
		ep.Sent++
	}
}

func (pc *PhysChannel) memberIndex(op *OutPort) int {
	for i, m := range pc.members {
		if m == op {
			return i
		}
	}
	panic("engine: output port not a member of its physical channel")
}
