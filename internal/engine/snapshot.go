package engine

import (
	"fmt"

	"sr2201/internal/checkpoint"
	"sr2201/internal/flit"
)

// Engine snapshot/restore. The contract (held by the restore-equivalence
// tests): build the same network the same way, restore a snapshot into it,
// and every subsequent Step produces the identical StateHash — and identical
// Counters — as the engine the snapshot was taken from. Snapshots capture
// only dynamic state; topology, routing functions and hooks are code, not
// data, and must be rebuilt by the caller before DecodeState (the snapshot
// carries a topology fingerprint so a mismatched rebuild fails loudly).
//
// Snapshots must be taken between Steps (never from inside a PreCycle or
// delivery hook): that is the only point where the kernel's per-cycle
// scratch state is guaranteed reconstructible.
//
// One non-obvious piece of state: a cut-through's Transform closure cannot
// be serialized, so the snapshot stores the closure's *output* — the
// rewritten header — computed at snapshot time. This is exact because a
// Transform is a pure function of the header (RouteFunc contract) and is
// only ever applied while the header flit is still buffered at the port,
// and the header cannot change between snapshot and traversal.

// Section names of the engine's state in a checkpoint container.
const (
	secEngineMeta     = "engine.meta"
	secEngineCounters = "engine.counters"
	secEngineNodes    = "engine.nodes"
	secEngineLinks    = "engine.links"
	secEnginePhys     = "engine.phys"
)

// topologyHash digests the built network's structure — node kinds, names,
// port counts, link wiring, physical-channel membership, and the kernel
// config — so DecodeState can refuse a snapshot taken from a different
// network before misinterpreting any of it.
func (e *Engine) topologyHash() uint64 {
	h := fnv64(fnvOffset64)
	h.i64(int64(e.cfg.BufferDepth))
	h.i64(int64(e.cfg.LinkDelay))
	h.i64(int64(e.cfg.Acquire))
	h.i64(int64(e.cfg.EjectRate))
	h.i64(int64(len(e.nodes)))
	for _, n := range e.nodes {
		h.i64(int64(n.Kind))
		h.i64(int64(len(n.Name)))
		for i := 0; i < len(n.Name); i++ {
			h.u64(uint64(n.Name[i]))
		}
		h.i64(int64(len(n.In)))
		h.i64(int64(len(n.Out)))
	}
	h.i64(int64(len(e.links)))
	for _, l := range e.links {
		h.i64(int64(l.from.node.ID))
		h.i64(int64(l.from.idx))
		h.i64(int64(l.to.node.ID))
		h.i64(int64(l.to.idx))
		h.i64(int64(l.delay))
	}
	h.i64(int64(len(e.phys)))
	for _, pc := range e.phys {
		h.i64(int64(len(pc.members)))
		for _, m := range pc.members {
			h.i64(int64(m.node.ID))
			h.i64(int64(m.idx))
		}
	}
	return uint64(h)
}

// EncodeState appends the engine's dynamic state to a checkpoint container
// as the "engine.*" sections.
func (e *Engine) EncodeState(w *checkpoint.Writer) {
	meta := w.Section(secEngineMeta)
	meta.Uint(e.topologyHash())
	meta.Bool(e.cfg.DisableActiveSet)
	meta.Int(e.cycle)
	meta.Int(e.moves)
	meta.Int(e.resident)
	meta.Int(e.dropped)
	meta.Int(int64(e.poolFreeLen()))

	ctr := w.Section(secEngineCounters)
	for _, v := range []int64{
		e.ctr.Cycles,
		e.ctr.LinkVisits, e.ctr.LinkVisitsSkipped,
		e.ctr.SwitchPortVisits, e.ctr.SwitchPortVisitsSkipped,
		e.ctr.EjectVisits, e.ctr.EjectVisitsSkipped,
		e.ctr.InjectVisits, e.ctr.InjectVisitsSkipped,
		e.ctr.RouteStatesAllocated, e.ctr.RouteStatesReused,
	} {
		ctr.Int(v)
	}

	nodes := w.Section(secEngineNodes)
	for _, n := range e.nodes {
		nodes.Bool(n.Failed)
		nodes.Int(n.Injected)
		nodes.Int(n.Sent)
		nodes.Int(n.Received)
		if n.Kind == KindEndpoint {
			q := n.pendingInject()
			nodes.Uint(uint64(len(q)))
			for i := range q {
				flit.EncodeFlit(nodes, &q[i])
			}
			nodes.Bool(n.ejectActive)
			nodes.Byte(n.ejectIdle)
			nodes.Bool(n.injectActive)
			nodes.Byte(n.injectIdle)
		}
		for _, in := range n.In {
			nodes.Uint(uint64(len(in.buf)))
			for i := range in.buf {
				flit.EncodeFlit(nodes, &in.buf[i])
			}
			nodes.Bool(in.recvHeader != nil)
			if in.recvHeader != nil {
				flit.EncodeHeader(nodes, in.recvHeader)
			}
			nodes.Bool(in.active)
			nodes.Byte(in.idle)
			nodes.Int(in.BlockedCycles)
			rs := in.route
			nodes.Bool(rs != nil)
			if rs != nil {
				nodes.Bool(rs.sink)
				nodes.Int(rs.since)
				nodes.Bool(rs.provisional)
				flit.EncodeHeader(nodes, rs.header)
				nodes.Bool(rs.transform != nil)
				if rs.transform != nil {
					flit.EncodeHeader(nodes, rs.transform(rs.header))
				}
				nodes.Uint(uint64(len(rs.outs)))
				for i, o := range rs.outs {
					nodes.Int(int64(o))
					nodes.Bool(rs.granted[i])
				}
			}
		}
		for _, out := range n.Out {
			nodes.Int(int64(out.credits))
			nodes.Int(int64(out.arb))
			nodes.Int(out.reservedCycle)
			nodes.Int(out.lastReqCycle)
			nodes.Bool(out.conflictCounted)
			nodes.Int(out.BusyCycles)
			nodes.Int(out.ConflictCycles)
		}
	}

	links := w.Section(secEngineLinks)
	for _, l := range e.links {
		links.Bool(l.active)
		links.Byte(l.idle)
		links.Uint(uint64(len(l.pipe)))
		for i := range l.pipe {
			flit.EncodeFlit(links, &l.pipe[i].f)
			links.Int(int64(l.pipe[i].age))
		}
	}

	phys := w.Section(secEnginePhys)
	for _, pc := range e.phys {
		phys.Int(int64(pc.arb))
		granted := int64(-1)
		if pc.granted != nil {
			granted = int64(pc.memberIndex(pc.granted))
		}
		phys.Int(granted)
		phys.Int(pc.grantedCycle)
	}
}

// Snapshot serializes the engine's dynamic state into one self-contained
// checkpoint container.
func (e *Engine) Snapshot() []byte {
	w := checkpoint.NewWriter()
	e.EncodeState(w)
	return w.Bytes()
}

// Restore replaces the engine's dynamic state with a container produced by
// Snapshot on an identically-built engine. On error the engine is left in an
// unspecified state: decode into a freshly built network and discard it on
// failure.
func (e *Engine) Restore(data []byte) error {
	r, err := checkpoint.NewReader(data)
	if err != nil {
		return err
	}
	return e.DecodeState(r)
}

// DecodeState restores the "engine.*" sections of a checkpoint container
// into this engine, which must have been built identically to the snapshot's
// source (same topology builder, same Config). Hooks (OnDeliver, PreCycle,
// ...) are untouched. See Restore for the error contract.
func (e *Engine) DecodeState(r *checkpoint.Reader) error {
	meta, err := r.Section(secEngineMeta)
	if err != nil {
		return err
	}
	if got, want := meta.Uint(), e.topologyHash(); meta.Err() == nil && got != want {
		return fmt.Errorf("checkpoint: section %q: topology fingerprint %016x does not match this network's %016x", secEngineMeta, got, want)
	}
	if das := meta.Bool(); meta.Err() == nil && das != e.cfg.DisableActiveSet {
		return fmt.Errorf("checkpoint: section %q: DisableActiveSet=%v does not match this engine's %v (visit counters would diverge)", secEngineMeta, das, e.cfg.DisableActiveSet)
	}
	cycle := meta.Int()
	moves := meta.Int()
	resident := meta.Int()
	dropped := meta.Int()
	poolFree := meta.IntAsInt()
	if err := meta.Finish(); err != nil {
		return err
	}
	if poolFree < 0 || poolFree > e.nSwitchIn+len(e.endpoints) {
		return fmt.Errorf("checkpoint: section %q: implausible route-state pool size %d", secEngineMeta, poolFree)
	}

	ctrSec, err := r.Section(secEngineCounters)
	if err != nil {
		return err
	}
	var ctr Counters
	for _, p := range []*int64{
		&ctr.Cycles,
		&ctr.LinkVisits, &ctr.LinkVisitsSkipped,
		&ctr.SwitchPortVisits, &ctr.SwitchPortVisitsSkipped,
		&ctr.EjectVisits, &ctr.EjectVisitsSkipped,
		&ctr.InjectVisits, &ctr.InjectVisitsSkipped,
		&ctr.RouteStatesAllocated, &ctr.RouteStatesReused,
	} {
		*p = ctrSec.Int()
	}
	if err := ctrSec.Finish(); err != nil {
		return err
	}

	// Clear all dynamic state before overlaying the snapshot, so a restore
	// into a used engine does not leak previous traffic.
	e.clearDynamicState()

	nodes, err := r.Section(secEngineNodes)
	if err != nil {
		return err
	}
	for _, n := range e.nodes {
		n.Failed = nodes.Bool()
		n.Injected = nodes.Int()
		n.Sent = nodes.Int()
		n.Received = nodes.Int()
		if n.Kind == KindEndpoint {
			qn := nodes.Len(4)
			for i := 0; i < qn; i++ {
				n.injectQ = append(n.injectQ, decodeFlitChecked(nodes))
			}
			n.injectHead = 0
			n.ejectActive = nodes.Bool()
			n.ejectIdle = nodes.Byte()
			n.injectActive = nodes.Bool()
			n.injectIdle = nodes.Byte()
		}
		for _, in := range n.In {
			bn := nodes.Len(4)
			if nodes.Err() == nil && bn > in.cap {
				return fmt.Errorf("checkpoint: section %q: buffer at %s.%d holds %d flits, capacity %d", secEngineNodes, n.Name, in.idx, bn, in.cap)
			}
			for i := 0; i < bn; i++ {
				in.buf = append(in.buf, decodeFlitChecked(nodes))
			}
			if nodes.Bool() {
				in.recvHeader = flit.DecodeHeader(nodes)
			}
			in.active = nodes.Bool()
			in.idle = nodes.Byte()
			in.BlockedCycles = nodes.Int()
			if nodes.Bool() { // route state present
				rs := &routeState{}
				rs.sink = nodes.Bool()
				rs.since = nodes.Int()
				if nodes.Version() >= 2 {
					rs.provisional = nodes.Bool()
				}
				rs.header = flit.DecodeHeader(nodes)
				if nodes.Bool() { // transform captured as its pre-applied output
					transformed := flit.DecodeHeader(nodes)
					rs.transform = func(*flit.Header) *flit.Header { return transformed.Clone() }
				}
				on := nodes.Len(2)
				if nodes.Err() == nil && rs.sink && on != 0 {
					return fmt.Errorf("checkpoint: section %q: sink route state at %s.%d has %d outputs", secEngineNodes, n.Name, in.idx, on)
				}
				for i := 0; i < on; i++ {
					o := nodes.IntAsInt()
					g := nodes.Bool()
					if nodes.Err() != nil {
						break
					}
					if o < 0 || o >= len(n.Out) {
						return fmt.Errorf("checkpoint: section %q: route state at %s.%d names invalid output %d", secEngineNodes, n.Name, in.idx, o)
					}
					rs.outs = append(rs.outs, o)
					rs.granted = append(rs.granted, g)
					if g {
						if n.Out[o].owner != nil {
							return fmt.Errorf("checkpoint: section %q: output %s.%d granted to two inputs", secEngineNodes, n.Name, o)
						}
						n.Out[o].owner = in
						rs.nGranted++
					}
				}
				in.route = rs
			}
			if nodes.Err() == nil && !in.active && n.Kind == KindSwitch && (in.route != nil || len(in.buf) > 0) {
				return fmt.Errorf("checkpoint: section %q: busy port %s.%d marked inactive", secEngineNodes, n.Name, in.idx)
			}
		}
		for _, out := range n.Out {
			out.credits = nodes.IntAsInt()
			out.arb = nodes.IntAsInt()
			out.reservedCycle = nodes.Int()
			out.lastReqCycle = nodes.Int()
			out.conflictCounted = nodes.Bool()
			out.BusyCycles = nodes.Int()
			out.ConflictCycles = nodes.Int()
		}
		if nodes.Err() == nil && n.Kind == KindEndpoint {
			if !n.ejectActive && len(n.In[0].buf) > 0 {
				return fmt.Errorf("checkpoint: section %q: endpoint %s has arrivals but is eject-inactive", secEngineNodes, n.Name)
			}
			if !n.injectActive && n.InjectQueueLen() > 0 {
				return fmt.Errorf("checkpoint: section %q: endpoint %s has queued packets but is inject-inactive", secEngineNodes, n.Name)
			}
		}
	}
	if err := nodes.Finish(); err != nil {
		return err
	}

	links, err := r.Section(secEngineLinks)
	if err != nil {
		return err
	}
	for _, l := range e.links {
		l.active = links.Bool()
		l.idle = links.Byte()
		pn := links.Len(4)
		for i := 0; i < pn; i++ {
			f := decodeFlitChecked(links)
			age := links.IntAsInt()
			if links.Err() != nil {
				break
			}
			if age < 0 || age >= l.delay {
				return fmt.Errorf("checkpoint: section %q: link %d flit age %d outside [0,%d)", secEngineLinks, l.id, age, l.delay)
			}
			l.pipe = append(l.pipe, linkEntry{f: f, age: age})
		}
		if links.Err() == nil && !l.active && len(l.pipe) > 0 {
			return fmt.Errorf("checkpoint: section %q: loaded link %d marked inactive", secEngineLinks, l.id)
		}
	}
	if err := links.Finish(); err != nil {
		return err
	}

	phys, err := r.Section(secEnginePhys)
	if err != nil {
		return err
	}
	for _, pc := range e.phys {
		pc.arb = phys.IntAsInt()
		gi := phys.IntAsInt()
		pc.grantedCycle = phys.Int()
		if phys.Err() != nil {
			break
		}
		if gi < -1 || gi >= len(pc.members) {
			return fmt.Errorf("checkpoint: section %q: granted member %d outside channel of %d", secEnginePhys, gi, len(pc.members))
		}
		if gi >= 0 {
			pc.granted = pc.members[gi]
		}
		pc.wantStamp = -1
	}
	if err := phys.Finish(); err != nil {
		return err
	}

	// Cross-checks: credits must mirror downstream occupancy and the resident
	// count must equal the flits actually present, or the kernel's internal
	// invariants ("credit accounting bug" panics) would fire cycles later.
	var present int64
	for _, n := range e.nodes {
		present += int64(n.InjectQueueLen())
		for _, in := range n.In {
			present += int64(len(in.buf))
		}
	}
	for _, l := range e.links {
		present += int64(len(l.pipe))
		if want := l.to.cap - len(l.to.buf) - len(l.pipe); l.from.credits != want {
			return fmt.Errorf("checkpoint: section %q: link %d credits %d, occupancy implies %d", secEngineLinks, l.id, l.from.credits, want)
		}
	}
	if present != resident {
		return fmt.Errorf("checkpoint: section %q: resident count %d but %d flits present", secEngineMeta, resident, present)
	}

	e.cycle = cycle
	e.moves = moves
	e.resident = resident
	e.dropped = dropped
	e.resetPool(poolFree)
	e.ctr = ctr
	e.rebuildActiveSets()
	return nil
}

// decodeFlitChecked decodes one flit and enforces the kernel invariant that
// the header pointer is present exactly on header-kind flits.
func decodeFlitChecked(d *checkpoint.Decoder) flit.Flit {
	f := flit.DecodeFlit(d)
	if d.Err() != nil {
		return f
	}
	if (f.Kind == flit.KindHeader) != (f.Header != nil) {
		// This flit would panic the allocator cycles later; reject it now.
		d.Fail(fmt.Sprintf("flit pkt%d kind %v has header=%v", f.PacketID, f.Kind, f.Header != nil))
	}
	return f
}

// clearDynamicState empties every queue, buffer, pipeline and ownership in
// the network, leaving only topology.
func (e *Engine) clearDynamicState() {
	for _, n := range e.nodes {
		n.injectQ = n.injectQ[:0]
		n.injectHead = 0
		n.ejectActive, n.injectActive = false, false
		n.ejectIdle, n.injectIdle = 0, 0
		for _, in := range n.In {
			in.buf = in.buf[:0]
			in.route = nil
			in.recvHeader = nil
			in.active = false
			in.idle = 0
		}
		for _, out := range n.Out {
			out.owner = nil
			out.pend = out.pend[:0]
			out.pendStamp = -1
		}
	}
	for _, l := range e.links {
		l.pipe = l.pipe[:0]
		l.active = false
		l.idle = 0
	}
	for _, pc := range e.phys {
		pc.granted = nil
		pc.grantedCycle = -1
		pc.wantStamp = -1
		pc.wants = pc.wants[:0]
	}
}

// rebuildActiveSets reconstitutes every shard's active lists from the
// decoded per-element flags. Every source slice is already in full-scan
// order, so the rebuilt lists are sorted by construction; pending buffers
// restart empty (a snapshot's pending activations are folded into the
// lists, which is exactly where the next phase's merge would put them).
// Because the flags — not the lists — are the authoritative state, a
// snapshot carries no trace of the shard partition: it restores into an
// engine running any shard count.
func (e *Engine) rebuildActiveSets() {
	e.ensureShards()
	for _, s := range e.shards {
		s.rebuildActive()
	}
}
