package engine

import (
	"fmt"
	"testing"

	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

// chainScenario builds a chain of n 3-port switches (left 0, right 1, local
// endpoint 2) with one PE each, injects a deterministic crossing workload,
// and returns the engine plus its endpoints. Packets route rightward until
// they reach the switch whose index matches Dst[0]; keeping the channel
// dependencies acyclic means every workload drains.
func chainScenario(cfg Config, n int) (*Engine, []*Node) {
	e := New(cfg)
	sws := make([]*Node, n)
	eps := make([]*Node, n)
	for i := 0; i < n; i++ {
		idx := i
		route := func(nd *Node, in int, h *flit.Header) (Decision, error) {
			if h.Dst[0] == idx {
				return Decision{Outs: []int{2}}, nil
			}
			return Decision{Outs: []int{1}}, nil
		}
		sws[i] = e.AddSwitch(fmt.Sprintf("S%d", i), 3, route, nil)
		eps[i] = e.AddEndpoint(fmt.Sprintf("P%d", i), nil)
	}
	for i := 0; i < n; i++ {
		e.Connect(eps[i], 0, sws[i], 2)
		if i+1 < n {
			e.Connect(sws[i], 1, sws[i+1], 0)
		}
	}
	id := uint64(0)
	for i := 0; i < n; i++ {
		for _, hop := range []int{1, 2, n/2 + 1} {
			dst := i + hop
			if dst >= n {
				continue
			}
			id++
			e.Inject(eps[i], flit.NewPacket(&flit.Header{PacketID: id, Dst: geom.Coord{dst}}, 3+int(id)%6))
		}
	}
	return e, eps
}

// hashStream steps the engine `cycles` times and records StateHash after
// every step.
func hashStream(e *Engine, cycles int) []uint64 {
	out := make([]uint64, cycles)
	for i := range out {
		e.Step()
		out[i] = e.StateHash()
	}
	return out
}

func TestStateHashRepeatable(t *testing.T) {
	// Two engines built and driven identically must produce identical
	// per-cycle hash streams — the kernel has no hidden nondeterminism.
	a, _ := chainScenario(DefaultConfig(), 6)
	b, _ := chainScenario(DefaultConfig(), 6)
	ha := hashStream(a, 300)
	hb := hashStream(b, 300)
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("hash diverged at cycle %d: %#x vs %#x", i+1, ha[i], hb[i])
		}
	}
	if !a.Quiescent() || !b.Quiescent() {
		t.Fatal("scenario did not drain in 300 cycles")
	}
}

func TestStateHashSensitivity(t *testing.T) {
	// The hash must actually depend on state: an extra packet, or one more
	// step, must change it.
	a, _ := chainScenario(DefaultConfig(), 6)
	b, eps := chainScenario(DefaultConfig(), 6)
	b.Inject(eps[0], flit.NewPacket(&flit.Header{PacketID: 999, Dst: geom.Coord{3}}, 4))
	if a.StateHash() == b.StateHash() {
		t.Error("hash ignored an injected packet")
	}
	h0 := a.StateHash()
	a.Step()
	if a.StateHash() == h0 {
		t.Error("hash ignored a step on a busy network")
	}
}

func TestActiveSetEquivalence(t *testing.T) {
	// The scheduled kernel and the full-scan reference must agree on every
	// cycle's complete state, under backpressure-heavy and roomy configs.
	cfgs := []Config{
		{BufferDepth: 1, LinkDelay: 1, Acquire: AcquireAtomic},
		{BufferDepth: 2, LinkDelay: 1, Acquire: AcquireAtomic},
		{BufferDepth: 4, LinkDelay: 3, Acquire: AcquireIncremental},
		{BufferDepth: 8, LinkDelay: 2, Acquire: AcquireAtomic, EjectRate: 1},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(fmt.Sprintf("depth%d_delay%d", cfg.BufferDepth, cfg.LinkDelay), func(t *testing.T) {
			on, _ := chainScenario(cfg, 8)
			offCfg := cfg
			offCfg.DisableActiveSet = true
			off, _ := chainScenario(offCfg, 8)
			for c := 0; c < 600; c++ {
				on.Step()
				off.Step()
				if hOn, hOff := on.StateHash(), off.StateHash(); hOn != hOff {
					t.Fatalf("modes diverged at cycle %d: scheduled=%#x fullscan=%#x", c+1, hOn, hOff)
				}
				if on.Quiescent() && off.Quiescent() {
					return
				}
			}
			t.Fatal("scenario did not drain in 600 cycles")
		})
	}
}

func TestCountersObserveScheduling(t *testing.T) {
	e, _ := chainScenario(DefaultConfig(), 8)
	e.RunUntilQuiescent(1000)
	// Idle a while: the active sets must empty and skipping must dominate.
	for i := 0; i < 200; i++ {
		e.Step()
	}
	c := e.Counters()
	if c.Cycles == 0 || c.Visits() == 0 {
		t.Fatalf("counters not populated: %+v", c)
	}
	if c.Skipped() == 0 || c.SkipRatio() <= 0 {
		t.Errorf("active-set scheduling skipped nothing: %+v", c)
	}
	if c.RouteStatesAllocated == 0 {
		t.Errorf("no route states accounted: %+v", c)
	}

	off := DefaultConfig()
	off.DisableActiveSet = true
	e2, _ := chainScenario(off, 8)
	e2.RunUntilQuiescent(1000)
	if s := e2.Counters().Skipped(); s != 0 {
		t.Errorf("full-scan mode reported %d skipped visits", s)
	}
}

func TestMergePending(t *testing.T) {
	key := func(v int64) int64 { return v }
	cases := []struct {
		active, pending []int64
	}{
		{nil, []int64{3, 1, 2}},
		{[]int64{1, 4, 9}, []int64{2, 8, 10}},
		{[]int64{5, 6}, []int64{1, 2}},
		{[]int64{1, 2}, []int64{5, 6}},
		{[]int64{2}, nil},
		{nil, nil},
		{[]int64{10, 30, 50}, []int64{60, 40, 20, 0}},
	}
	for _, c := range cases {
		want := append(append([]int64{}, c.active...), c.pending...)
		got := mergePending(append([]int64{}, c.active...), append([]int64{}, c.pending...), key)
		if len(got) != len(want) {
			t.Fatalf("merge(%v,%v) length %d, want %d", c.active, c.pending, len(got), len(want))
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("merge(%v,%v) = %v not strictly sorted", c.active, c.pending, got)
			}
		}
		seen := map[int64]bool{}
		for _, v := range got {
			seen[v] = true
		}
		for _, v := range want {
			if !seen[v] {
				t.Fatalf("merge(%v,%v) = %v lost element %d", c.active, c.pending, got, v)
			}
		}
	}
}
