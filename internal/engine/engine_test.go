package engine

import (
	"fmt"
	"testing"

	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

// passThrough routes every packet straight across a two-port switch.
func passThrough(n *Node, in int, h *flit.Header) (Decision, error) {
	return Decision{Outs: []int{1 - in}}, nil
}

// destPort routes by Dst coordinate 0, interpreted as an output port number.
func destPort(n *Node, in int, h *flit.Header) (Decision, error) {
	return Decision{Outs: []int{h.Dst[0]}}, nil
}

func mkPacket(id uint64, dst geom.Coord, size int) []*flit.Flit {
	return flit.NewPacket(&flit.Header{PacketID: id, Dst: dst}, size)
}

// line builds EP(a) <-> SW <-> EP(b) and returns all three.
func line(e *Engine) (a, sw, b *Node) {
	a = e.AddEndpoint("A", nil)
	b = e.AddEndpoint("B", nil)
	sw = e.AddSwitch("SW", 2, passThrough, nil)
	e.Connect(a, 0, sw, 0)
	e.Connect(b, 0, sw, 1)
	return a, sw, b
}

func TestSinglePacketDelivery(t *testing.T) {
	e := New(DefaultConfig())
	a, _, b := line(e)
	var got []Delivery
	e.OnDeliver = func(d Delivery) { got = append(got, d) }

	e.Inject(a, mkPacket(1, geom.Coord{}, 4))
	if !e.RunUntilQuiescent(100) {
		t.Fatal("network did not drain")
	}
	if len(got) != 1 {
		t.Fatalf("got %d deliveries", len(got))
	}
	if got[0].At != b || got[0].Header.PacketID != 1 {
		t.Errorf("delivery = %+v", got[0])
	}
	if a.Sent != 1 || b.Received != 1 {
		t.Errorf("sent=%d received=%d", a.Sent, b.Received)
	}
	if e.Dropped() != 0 {
		t.Errorf("dropped=%d", e.Dropped())
	}
}

func TestLatencyPipelining(t *testing.T) {
	// One hop through a switch: header injected at cycle 0 should arrive at
	// the far endpoint after the inject+link+switch+link pipeline; with
	// single-cycle links a k-flit packet completes in ~k+3 cycles.
	e := New(Config{BufferDepth: 8, LinkDelay: 1})
	a, _, b := line(e)
	var deliveredAt int64 = -1
	e.OnDeliver = func(d Delivery) { deliveredAt = d.Cycle }
	e.Inject(a, mkPacket(1, geom.Coord{}, 4))
	e.RunUntilQuiescent(100)
	if deliveredAt < 4 || deliveredAt > 10 {
		t.Errorf("4-flit packet delivered at cycle %d, want in [4,10]", deliveredAt)
	}
	_ = b
}

func TestMultiplePacketsInOrder(t *testing.T) {
	e := New(DefaultConfig())
	a, _, _ := line(e)
	var ids []uint64
	e.OnDeliver = func(d Delivery) { ids = append(ids, d.Header.PacketID) }
	for i := 1; i <= 5; i++ {
		e.Inject(a, mkPacket(uint64(i), geom.Coord{}, 3))
	}
	if !e.RunUntilQuiescent(500) {
		t.Fatal("did not drain")
	}
	if len(ids) != 5 {
		t.Fatalf("got %d deliveries", len(ids))
	}
	for i, id := range ids {
		if id != uint64(i+1) {
			t.Errorf("delivery %d has id %d; FIFO order violated", i, id)
		}
	}
}

func TestBackpressureNeverOverflows(t *testing.T) {
	// Tiny buffers, many packets: the credit system must keep buffers legal
	// (deliverLinks panics on overflow).
	e := New(Config{BufferDepth: 1, LinkDelay: 1})
	a, _, _ := line(e)
	done := 0
	e.OnDeliver = func(Delivery) { done++ }
	for i := 0; i < 20; i++ {
		e.Inject(a, mkPacket(uint64(i), geom.Coord{}, 6))
	}
	if !e.RunUntilQuiescent(5000) {
		t.Fatal("did not drain")
	}
	if done != 20 {
		t.Errorf("delivered %d/20", done)
	}
}

func TestFanOutReplication(t *testing.T) {
	// EP0 -> SW(3 ports) -> EP1, EP2. Routing fans out to both.
	e := New(DefaultConfig())
	e0 := e.AddEndpoint("E0", nil)
	e1 := e.AddEndpoint("E1", nil)
	e2 := e.AddEndpoint("E2", nil)
	fan := func(n *Node, in int, h *flit.Header) (Decision, error) {
		return Decision{Outs: []int{1, 2}}, nil
	}
	sw := e.AddSwitch("SW", 3, fan, nil)
	e.Connect(e0, 0, sw, 0)
	e.Connect(e1, 0, sw, 1)
	e.Connect(e2, 0, sw, 2)

	recv := map[string]int{}
	e.OnDeliver = func(d Delivery) { recv[d.At.Name]++ }
	e.Inject(e0, mkPacket(7, geom.Coord{}, 5))
	if !e.RunUntilQuiescent(200) {
		t.Fatal("did not drain")
	}
	if recv["E1"] != 1 || recv["E2"] != 1 {
		t.Errorf("receipts = %v", recv)
	}
}

func TestFanOutHeaderTransformIsolated(t *testing.T) {
	// A transform on a fan-out must give each branch an independent header.
	e := New(DefaultConfig())
	e0 := e.AddEndpoint("E0", nil)
	e1 := e.AddEndpoint("E1", nil)
	e2 := e.AddEndpoint("E2", nil)
	fan := func(n *Node, in int, h *flit.Header) (Decision, error) {
		return Decision{
			Outs:      []int{1, 2},
			Transform: func(h *flit.Header) *flit.Header { c := h.Clone(); c.RC = flit.RCBroadcast; return c },
		}, nil
	}
	sw := e.AddSwitch("SW", 3, fan, nil)
	e.Connect(e0, 0, sw, 0)
	e.Connect(e1, 0, sw, 1)
	e.Connect(e2, 0, sw, 2)
	var headers []*flit.Header
	e.OnDeliver = func(d Delivery) { headers = append(headers, d.Header) }
	orig := &flit.Header{PacketID: 9}
	e.Inject(e0, flit.NewPacket(orig, 1))
	e.RunUntilQuiescent(100)
	if len(headers) != 2 {
		t.Fatalf("got %d deliveries", len(headers))
	}
	if headers[0] == headers[1] {
		t.Error("branches share a header object")
	}
	for _, h := range headers {
		if h == orig {
			t.Error("transform mutated/forwarded the original header")
		}
		if h.RC != flit.RCBroadcast {
			t.Errorf("branch RC = %v", h.RC)
		}
	}
	if orig.RC != flit.RCNormal {
		t.Error("original header mutated")
	}
}

func TestContentionSerializesAndCounts(t *testing.T) {
	// Two senders to one receiver through a 3-port switch: deliveries must
	// serialize and the shared output must record a conflict.
	e := New(DefaultConfig())
	s0 := e.AddEndpoint("S0", nil)
	s1 := e.AddEndpoint("S1", nil)
	r := e.AddEndpoint("R", nil)
	toTwo := func(n *Node, in int, h *flit.Header) (Decision, error) {
		return Decision{Outs: []int{2}}, nil
	}
	sw := e.AddSwitch("SW", 3, toTwo, nil)
	e.Connect(s0, 0, sw, 0)
	e.Connect(s1, 0, sw, 1)
	e.Connect(r, 0, sw, 2)
	got := 0
	e.OnDeliver = func(Delivery) { got++ }
	e.Inject(s0, mkPacket(1, geom.Coord{}, 6))
	e.Inject(s1, mkPacket(2, geom.Coord{}, 6))
	if !e.RunUntilQuiescent(500) {
		t.Fatal("did not drain")
	}
	if got != 2 {
		t.Errorf("delivered %d", got)
	}
	if sw.Out[2].ConflictCycles == 0 {
		t.Error("no conflict recorded on contended output")
	}
}

// buildRing makes a k-switch unidirectional ring with one endpoint per
// switch. Switch ports: 0=endpoint, 1=from previous, 2=to next. Dst[0] is the
// destination ring index.
func buildRing(e *Engine, k int) (eps, sws []*Node) {
	route := func(n *Node, in int, h *flit.Header) (Decision, error) {
		self := n.Meta.(int)
		if h.Dst[0] == self {
			return Decision{Outs: []int{0}}, nil
		}
		return Decision{Outs: []int{2}}, nil
	}
	for i := 0; i < k; i++ {
		eps = append(eps, e.AddEndpoint(fmt.Sprintf("E%d", i), i))
		sws = append(sws, e.AddSwitch(fmt.Sprintf("S%d", i), 3, route, i))
		e.Connect(eps[i], 0, sws[i], 0)
	}
	for i := 0; i < k; i++ {
		e.ConnectDirected(sws[i], 2, sws[(i+1)%k], 1)
		// Unused reverse direction so ports are "connected" symmetrically:
		// not needed; ring uses directed links only.
	}
	return eps, sws
}

func TestRingDeliversWithoutFullLoad(t *testing.T) {
	e := New(DefaultConfig())
	eps, _ := buildRing(e, 4)
	got := 0
	e.OnDeliver = func(Delivery) { got++ }
	e.Inject(eps[0], mkPacket(1, geom.Coord{2}, 8))
	if !e.RunUntilQuiescent(500) {
		t.Fatal("did not drain")
	}
	if got != 1 {
		t.Errorf("delivered %d", got)
	}
}

func TestRingCreditDeadlock(t *testing.T) {
	// The classic wormhole cycle: 4 long packets, each traveling two hops
	// clockwise, injected simultaneously with tiny buffers. Each packet's
	// head waits on the ring link held by the next packet: true deadlock.
	e := New(Config{BufferDepth: 1, LinkDelay: 1})
	eps, _ := buildRing(e, 4)
	for i := 0; i < 4; i++ {
		e.Inject(eps[i], mkPacket(uint64(i+1), geom.Coord{(i + 2) % 4}, 16))
	}
	drained := e.RunUntilQuiescent(2000)
	if drained {
		t.Fatal("expected deadlock, network drained")
	}
	// Verify quiescence of movement: stepping further moves nothing.
	m := e.Moves()
	for i := 0; i < 50; i++ {
		e.Step()
	}
	if e.Moves() != m {
		t.Errorf("moves still advancing after wedge: %d -> %d", m, e.Moves())
	}
	if e.Resident() == 0 {
		t.Error("resident hit zero in a deadlock")
	}
	// The snapshot must show blocked ports with owned wants or credit stalls.
	blocked := e.BlockedPorts()
	if len(blocked) == 0 {
		t.Error("no blocked ports reported in a deadlock")
	}
}

func TestFailedSwitchDropsAndReports(t *testing.T) {
	e := New(DefaultConfig())
	a, sw, _ := line(e)
	sw.Failed = true
	var drops []Drop
	e.OnDrop = func(d Drop) { drops = append(drops, d) }
	delivered := 0
	e.OnDeliver = func(Delivery) { delivered++ }
	e.Inject(a, mkPacket(3, geom.Coord{}, 4))
	if !e.RunUntilQuiescent(200) {
		t.Fatal("did not drain")
	}
	if delivered != 0 {
		t.Errorf("delivered %d through failed switch", delivered)
	}
	if len(drops) != 1 || e.Dropped() != 1 {
		t.Fatalf("drops = %d (counter %d)", len(drops), e.Dropped())
	}
	if drops[0].At != sw || drops[0].Header.PacketID != 3 {
		t.Errorf("drop = %+v", drops[0])
	}
}

func TestRouteErrorDrops(t *testing.T) {
	e := New(DefaultConfig())
	a := e.AddEndpoint("A", nil)
	b := e.AddEndpoint("B", nil)
	bad := func(n *Node, in int, h *flit.Header) (Decision, error) {
		return Decision{}, fmt.Errorf("unreachable")
	}
	sw := e.AddSwitch("SW", 2, bad, nil)
	e.Connect(a, 0, sw, 0)
	e.Connect(b, 0, sw, 1)
	var reason string
	e.OnDrop = func(d Drop) { reason = d.Reason }
	e.Inject(a, mkPacket(1, geom.Coord{}, 4))
	if !e.RunUntilQuiescent(200) {
		t.Fatal("did not drain after drop")
	}
	if reason != "unreachable" {
		t.Errorf("drop reason %q", reason)
	}
}

func TestAtomicAcquisitionHoldsNothingPartial(t *testing.T) {
	// One output busy with a long packet; an atomic fan-out wanting that
	// output plus a free one must hold neither until both are free.
	e := New(Config{BufferDepth: 2, LinkDelay: 1, Acquire: AcquireAtomic})
	src := e.AddEndpoint("SRC", nil)
	bc := e.AddEndpoint("BC", nil)
	d1 := e.AddEndpoint("D1", nil)
	d2 := e.AddEndpoint("D2", nil)
	route := func(n *Node, in int, h *flit.Header) (Decision, error) {
		if h.RC == flit.RCBroadcast {
			return Decision{Outs: []int{2, 3}}, nil
		}
		return Decision{Outs: []int{2}}, nil
	}
	sw := e.AddSwitch("SW", 4, route, nil)
	e.Connect(src, 0, sw, 0)
	e.Connect(bc, 0, sw, 1)
	e.Connect(d1, 0, sw, 2)
	e.Connect(d2, 0, sw, 3)

	e.Inject(src, mkPacket(1, geom.Coord{}, 12))
	h := &flit.Header{PacketID: 2, RC: flit.RCBroadcast}
	e.Inject(bc, flit.NewPacket(h, 4))

	// Step until the unicast owns port 2, then check the fan-out holds no
	// ports while waiting.
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if sw.Out[2].Owner() == nil {
		t.Fatal("unicast did not claim port 2")
	}
	if sw.Out[3].Owner() != nil {
		t.Error("atomic fan-out holds port 3 while port 2 is busy")
	}
	got := 0
	e.OnDeliver = func(Delivery) { got++ }
	if !e.RunUntilQuiescent(500) {
		t.Fatal("did not drain")
	}
	if got != 3 { // unicast to D1, broadcast to D1+D2
		t.Errorf("delivered %d, want 3", got)
	}
}

func TestIncrementalAcquisitionHoldsPartial(t *testing.T) {
	// Same setup as the atomic test but incremental: the fan-out must hold
	// the free port while waiting for the busy one.
	e := New(Config{BufferDepth: 2, LinkDelay: 1, Acquire: AcquireIncremental})
	src := e.AddEndpoint("SRC", nil)
	bc := e.AddEndpoint("BC", nil)
	d1 := e.AddEndpoint("D1", nil)
	d2 := e.AddEndpoint("D2", nil)
	route := func(n *Node, in int, h *flit.Header) (Decision, error) {
		if h.RC == flit.RCBroadcast {
			return Decision{Outs: []int{2, 3}}, nil
		}
		return Decision{Outs: []int{2}}, nil
	}
	sw := e.AddSwitch("SW", 4, route, nil)
	e.Connect(src, 0, sw, 0)
	e.Connect(bc, 0, sw, 1)
	e.Connect(d1, 0, sw, 2)
	e.Connect(d2, 0, sw, 3)

	e.Inject(src, mkPacket(1, geom.Coord{}, 12))
	h := &flit.Header{PacketID: 2, RC: flit.RCBroadcast}
	e.Inject(bc, flit.NewPacket(h, 4))
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if sw.Out[2].Owner() == nil {
		t.Fatal("unicast did not claim port 2")
	}
	if sw.Out[3].Owner() == nil || sw.Out[3].Owner().Node() != sw || sw.Out[3].Owner().Index() != 1 {
		t.Error("incremental fan-out did not hold the free port 3")
	}
	if !e.RunUntilQuiescent(500) {
		t.Fatal("did not drain")
	}
}

func TestPhysicalChannelSharesBandwidth(t *testing.T) {
	// Two parallel streams on two "virtual channel" outputs multiplexed over
	// one physical channel must take about twice as long as one stream.
	build := func(shared bool) int64 {
		e := New(Config{BufferDepth: 8, LinkDelay: 1})
		s0 := e.AddEndpoint("S0", nil)
		s1 := e.AddEndpoint("S1", nil)
		r0 := e.AddEndpoint("R0", nil)
		r1 := e.AddEndpoint("R1", nil)
		route := func(n *Node, in int, h *flit.Header) (Decision, error) {
			return Decision{Outs: []int{in + 2}}, nil
		}
		sw := e.AddSwitch("SW", 4, route, nil)
		e.Connect(s0, 0, sw, 0)
		e.Connect(s1, 0, sw, 1)
		e.Connect(r0, 0, sw, 2)
		e.Connect(r1, 0, sw, 3)
		if shared {
			e.SharePhysical(sw.Out[2], sw.Out[3])
		}
		for i := 0; i < 4; i++ {
			e.Inject(s0, mkPacket(uint64(10+i), geom.Coord{}, 16))
			e.Inject(s1, mkPacket(uint64(20+i), geom.Coord{}, 16))
		}
		var last int64
		e.OnDeliver = func(d Delivery) { last = d.Cycle }
		if !e.RunUntilQuiescent(5000) {
			t.Fatal("did not drain")
		}
		return last
	}
	dedicated := build(false)
	shared := build(true)
	if shared < dedicated*3/2 {
		t.Errorf("shared channel finished at %d, dedicated at %d; expected ~2x slowdown", shared, dedicated)
	}
}

func TestEjectRateLimit(t *testing.T) {
	e := New(Config{BufferDepth: 4, LinkDelay: 1, EjectRate: 1})
	a, _, _ := line(e)
	got := 0
	e.OnDeliver = func(Delivery) { got++ }
	e.Inject(a, mkPacket(1, geom.Coord{}, 8))
	if !e.RunUntilQuiescent(200) {
		t.Fatal("did not drain")
	}
	if got != 1 {
		t.Errorf("delivered %d", got)
	}
}

func TestOnForwardTracesPath(t *testing.T) {
	e := New(DefaultConfig())
	a, _, _ := line(e)
	var hops []string
	e.OnForward = func(from *Node, out int, h *flit.Header, cycle int64) {
		hops = append(hops, fmt.Sprintf("%s.%d", from.Name, out))
	}
	e.Inject(a, mkPacket(1, geom.Coord{}, 2))
	e.RunUntilQuiescent(100)
	want := []string{"A.0", "SW.1"}
	if len(hops) != len(want) {
		t.Fatalf("hops = %v", hops)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Errorf("hop %d = %s, want %s", i, hops[i], want[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		e := New(Config{BufferDepth: 1, LinkDelay: 1})
		eps, _ := buildRing(e, 6)
		for i := 0; i < 6; i++ {
			e.Inject(eps[i], mkPacket(uint64(i), geom.Coord{(i + 3) % 6}, 5))
		}
		e.RunUntilQuiescent(10000)
		return e.Cycle(), e.Moves()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", c1, m1, c2, m2)
	}
}

func TestInjectValidation(t *testing.T) {
	e := New(DefaultConfig())
	a, sw, _ := line(e)
	_ = a
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Inject on switch did not panic")
			}
		}()
		e.Inject(sw, mkPacket(1, geom.Coord{}, 1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Inject of headerless flits did not panic")
			}
		}()
		p := mkPacket(1, geom.Coord{}, 2)
		e.Inject(a, p[1:])
	}()
	// Empty injection is a no-op.
	e.Inject(a, nil)
	if e.Resident() != 0 {
		t.Error("empty inject changed resident count")
	}
}

func TestResidentAccounting(t *testing.T) {
	e := New(DefaultConfig())
	a, _, _ := line(e)
	e.OnDeliver = func(Delivery) {}
	e.Inject(a, mkPacket(1, geom.Coord{}, 5))
	if e.Resident() != 5 {
		t.Fatalf("resident after inject = %d", e.Resident())
	}
	e.RunUntilQuiescent(100)
	if e.Resident() != 0 {
		t.Errorf("resident after drain = %d", e.Resident())
	}
}

func TestConfigNormalization(t *testing.T) {
	e := New(Config{BufferDepth: -3, LinkDelay: 0, EjectRate: -1})
	c := e.Config()
	if c.BufferDepth != 1 || c.LinkDelay != 1 || c.EjectRate != 0 {
		t.Errorf("normalized config = %+v", c)
	}
}

func TestStalledEndpoints(t *testing.T) {
	// Block the switch so the endpoint cannot inject past its credits.
	e := New(Config{BufferDepth: 1, LinkDelay: 1})
	a := e.AddEndpoint("A", nil)
	b := e.AddEndpoint("B", nil)
	c := e.AddEndpoint("C", nil)
	// Both A and B send to C forever; one will stall behind the other.
	toC := func(n *Node, in int, h *flit.Header) (Decision, error) {
		return Decision{Outs: []int{2}}, nil
	}
	sw3 := e.AddSwitch("SW", 3, toC, nil)
	e.Connect(a, 0, sw3, 0)
	e.Connect(b, 0, sw3, 1)
	e.Connect(c, 0, sw3, 2)
	e.Inject(a, mkPacket(1, geom.Coord{}, 40))
	e.Inject(b, mkPacket(2, geom.Coord{}, 40))
	for i := 0; i < 6; i++ {
		e.Step()
	}
	if len(e.StalledEndpoints()) == 0 {
		t.Error("expected a stalled endpoint while streams contend")
	}
	if !e.RunUntilQuiescent(1000) {
		t.Fatal("did not drain")
	}
}
