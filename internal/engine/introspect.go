package engine

import (
	"slices"

	"sr2201/internal/flit"
)

// This file exposes read-only views of kernel state for the deadlock
// analyzer (wait-for graph construction) and for tests.

// Node returns the node owning the port.
func (p *InPort) Node() *Node { return p.node }

// Index returns the port's index within its node.
func (p *InPort) Index() int { return p.idx }

// CurrentHeader returns the header of the packet holding the port's
// cut-through state, or nil if the port is idle.
func (p *InPort) CurrentHeader() *flit.Header {
	if p.route == nil {
		return nil
	}
	return p.route.header
}

// Node returns the node owning the port.
func (o *OutPort) Node() *Node { return o.node }

// Index returns the port's index within its node.
func (o *OutPort) Index() int { return o.idx }

// Owner returns the input port whose packet holds this output, or nil.
func (o *OutPort) Owner() *InPort { return o.owner }

// Credits returns the available downstream buffer credits.
func (o *OutPort) Credits() int { return o.credits }

// DownstreamIn returns the input port this output feeds, or nil when
// unconnected.
func (o *OutPort) DownstreamIn() *InPort {
	if o.link == nil {
		return nil
	}
	return o.link.to
}

// UpstreamOut returns the output port that feeds this input, or nil when
// unconnected.
func (p *InPort) UpstreamOut() *OutPort {
	if p.upstream == nil {
		return nil
	}
	return p.upstream.from
}

// UpstreamInFlight reports the flits currently traveling on the link into
// this port. A non-zero value means an apparent flit starvation is
// transient: delivery is already under way.
func (p *InPort) UpstreamInFlight() int {
	if p.upstream == nil {
		return 0
	}
	return len(p.upstream.pipe)
}

// WaitInfo describes one switch input port whose packet cannot advance this
// instant, and the resources involved. It is a snapshot: call it only when
// the network is stalled (e.g. after the watchdog fires), since transient
// arbitration losses also appear blocked for a cycle.
type WaitInfo struct {
	// In is the blocked input port; Header identifies its packet.
	In     *InPort
	Header *flit.Header
	// Holds are output ports the packet has acquired at this switch.
	Holds []*OutPort
	// WantsOwned are required output ports currently owned by another packet.
	WantsOwned []*OutPort
	// WantsFree are required output ports that are free (the packet merely
	// lost arbitration or was not yet allocated; transient unless the network
	// is wedged for another reason).
	WantsFree []*OutPort
	// CreditStalled are acquired outputs with zero credits: the downstream
	// buffer is full, so progress depends on the downstream input draining.
	CreditStalled []*OutPort
	// AwaitingFlits is true when the port is fully granted and credit-clear
	// but simply has no flit buffered (the packet's flits are upstream).
	AwaitingFlits bool
}

// BlockedPorts snapshots every switch input port holding an active packet
// that cannot complete its next flit movement right now.
func (e *Engine) BlockedPorts() []WaitInfo {
	var out []WaitInfo
	for _, sw := range e.switches {
		for _, in := range sw.In {
			rs := in.route
			if rs == nil || rs.sink {
				continue
			}
			wi := WaitInfo{In: in, Header: rs.header}
			blocked := false
			for i, o := range rs.outs {
				op := sw.Out[o]
				if rs.granted[i] {
					wi.Holds = append(wi.Holds, op)
					if op.credits < 1 {
						wi.CreditStalled = append(wi.CreditStalled, op)
						blocked = true
					}
				} else {
					if op.owner != nil {
						wi.WantsOwned = append(wi.WantsOwned, op)
					} else {
						wi.WantsFree = append(wi.WantsFree, op)
					}
					blocked = true
				}
			}
			if !blocked && in.front() == nil {
				wi.AwaitingFlits = true
				blocked = true
			}
			if blocked {
				out = append(out, wi)
			}
		}
	}
	return out
}

// InFlightHeaders snapshots the header of every packet currently resident in
// the network — source injection queues, input buffers, cut-through states,
// receive states and link pipelines — deduplicated by packet ID and sorted
// ascending. unknown lists the IDs (also ascending) of resident packets
// whose header flit is nowhere to be found (body/tail remnants only);
// callers that classify packets by header fields must treat those
// conservatively. The reconfiguration layer uses this scan to decide which
// routing-table generations still have packets routing under them. Call
// between Steps (or from the PreCycle/PostCycle hooks), never from within a
// phase.
func (e *Engine) InFlightHeaders() (hdrs []*flit.Header, unknown []uint64) {
	seen := map[uint64]*flit.Header{}
	add := func(id uint64, h *flit.Header) {
		if cur, ok := seen[id]; !ok || (cur == nil && h != nil) {
			seen[id] = h
		}
	}
	for _, nd := range e.nodes {
		if nd.Kind == KindEndpoint && nd.InjectQueueLen() > 0 {
			for _, f := range nd.pendingInject() {
				add(f.PacketID, f.Header)
			}
		}
		for _, in := range nd.In {
			for i := range in.buf {
				add(in.buf[i].PacketID, in.buf[i].Header)
			}
			if rs := in.route; rs != nil && rs.header != nil {
				add(rs.header.PacketID, rs.header)
			}
			if in.recvHeader != nil {
				add(in.recvHeader.PacketID, in.recvHeader)
			}
		}
	}
	for _, l := range e.links {
		for i := range l.pipe {
			add(l.pipe[i].f.PacketID, l.pipe[i].f.Header)
		}
	}
	ids := make([]uint64, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		if h := seen[id]; h != nil {
			hdrs = append(hdrs, h)
		} else {
			unknown = append(unknown, id)
		}
	}
	return hdrs, unknown
}

// StalledEndpoints returns endpoints with queued flits that cannot inject
// because the outbound link has no credits.
func (e *Engine) StalledEndpoints() []*Node {
	var out []*Node
	for _, ep := range e.endpoints {
		if ep.InjectQueueLen() > 0 && ep.Out[0].credits < 1 {
			out = append(out, ep)
		}
	}
	return out
}
