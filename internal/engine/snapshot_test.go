package engine

import (
	"fmt"
	"strings"
	"testing"

	"sr2201/internal/flit"
	"sr2201/internal/geom"
)

// scenario is a deterministic build: the same function must produce the
// same engine (topology + injected workload) every call, so a snapshot from
// one instance restores into a fresh instance.
type scenario struct {
	name  string
	build func() *Engine
	// horizon bounds the reference run; every scenario drains well within it.
	horizon int
	// preStep, if non-nil, runs before each Step with the cycle index — the
	// hook a dynamic-fault schedule would use. It must be deterministic.
	preStep func(e *Engine, cycle int)
}

func snapshotScenarios() []scenario {
	chain := func(cfg Config) func() *Engine {
		return func() *Engine { e, _ := chainScenario(cfg, 8); return e }
	}
	fanTransform := func() *Engine {
		// Broadcast-style fan-out with an RC-rewriting transform, long
		// packets against shallow buffers, so snapshots land while headers
		// sit at transforming switches in every grant state.
		e := New(Config{BufferDepth: 2, LinkDelay: 1, Acquire: AcquireAtomic})
		src := e.AddEndpoint("SRC", nil)
		sinks := make([]*Node, 3)
		fan := func(n *Node, in int, h *flit.Header) (Decision, error) {
			if h.RC == flit.RCBroadcastRequest {
				return Decision{
					Outs:      []int{1, 2, 3},
					Transform: func(h *flit.Header) *flit.Header { c := h.Clone(); c.RC = flit.RCBroadcast; return c },
				}, nil
			}
			return Decision{Outs: []int{1 + int(h.Dst[0])%3}}, nil
		}
		sw := e.AddSwitch("FAN", 4, fan, nil)
		e.Connect(src, 0, sw, 0)
		for i := range sinks {
			sinks[i] = e.AddEndpoint(fmt.Sprintf("K%d", i), nil)
			e.Connect(sinks[i], 0, sw, 1+i)
		}
		for i := 0; i < 6; i++ {
			rc := flit.RCNormal
			if i%2 == 0 {
				rc = flit.RCBroadcastRequest
			}
			e.Inject(src, flit.NewPacket(&flit.Header{PacketID: uint64(100 + i), RC: rc, Dst: geom.Coord{i}}, 5))
		}
		return e
	}
	return []scenario{
		{name: "chain/default", build: chain(DefaultConfig()), horizon: 400},
		{name: "chain/incremental_delay3", build: chain(Config{BufferDepth: 4, LinkDelay: 3, Acquire: AcquireIncremental}), horizon: 900},
		{name: "chain/fullscan", build: chain(Config{BufferDepth: 2, LinkDelay: 1, DisableActiveSet: true}), horizon: 400},
		{name: "chain/ejectrate1", build: chain(Config{BufferDepth: 8, LinkDelay: 2, EjectRate: 1}), horizon: 900},
		{name: "fanout/transform", build: fanTransform, horizon: 300},
		{name: "phys/shared", build: physSharedEngine, horizon: 500},
		{name: "chain/killswitch", build: chain(DefaultConfig()), horizon: 600,
			preStep: func(e *Engine, cycle int) {
				if cycle == 9 {
					e.KillSwitch(e.Switches()[4])
				}
			}},
	}
}

// physSharedEngine is the shared-wire build: two outputs of one switch
// multiplexed onto a single physical channel — the engine-layer mechanism
// virtual channels are made of. Named so both the snapshot scenarios and
// the decode fuzzer can produce snapshots that carry a phys-channel section.
func physSharedEngine() *Engine {
	e := New(Config{BufferDepth: 4, LinkDelay: 1})
	s0 := e.AddEndpoint("S0", nil)
	s1 := e.AddEndpoint("S1", nil)
	r0 := e.AddEndpoint("R0", nil)
	r1 := e.AddEndpoint("R1", nil)
	route := func(n *Node, in int, h *flit.Header) (Decision, error) {
		return Decision{Outs: []int{in + 2}}, nil
	}
	sw := e.AddSwitch("SW", 4, route, nil)
	e.Connect(s0, 0, sw, 0)
	e.Connect(s1, 0, sw, 1)
	e.Connect(r0, 0, sw, 2)
	e.Connect(r1, 0, sw, 3)
	e.SharePhysical(sw.Out[2], sw.Out[3])
	for i := 0; i < 4; i++ {
		e.Inject(s0, mkPacket(uint64(10+i), geom.Coord{}, 9))
		e.Inject(s1, mkPacket(uint64(20+i), geom.Coord{}, 9))
	}
	return e
}

// runRecording drives a scenario instance for up to `cycles` steps and
// returns the per-cycle StateHash stream (hash after each Step).
func runRecording(s scenario, e *Engine, cycles int) []uint64 {
	out := make([]uint64, 0, cycles)
	for i := 0; i < cycles; i++ {
		if s.preStep != nil {
			s.preStep(e, i)
		}
		e.Step()
		out = append(out, e.StateHash())
	}
	return out
}

// TestRestoreEquivalence is the load-bearing contract of the checkpoint
// subsystem: for every scenario and every snapshot cycle k, restoring the
// snapshot into a freshly built engine and running to the horizon produces
// the per-cycle StateHash stream — and the Counters — of the uninterrupted
// run, exactly.
func TestRestoreEquivalence(t *testing.T) {
	for _, s := range snapshotScenarios() {
		t.Run(s.name, func(t *testing.T) {
			ref := s.build()
			refStream := runRecording(s, ref, s.horizon)
			if !ref.Quiescent() {
				t.Fatalf("scenario did not drain within %d cycles", s.horizon)
			}
			refCtr := ref.Counters()
			ks := []int{0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233}
			for _, k := range ks {
				if k >= s.horizon {
					break
				}
				// Run a fresh instance to cycle k and snapshot it.
				src := s.build()
				_ = runRecording(s, src, k)
				snap := src.Snapshot()

				dst := s.build()
				if err := dst.Restore(snap); err != nil {
					t.Fatalf("k=%d: restore: %v", k, err)
				}
				if got, want := dst.StateHash(), src.StateHash(); got != want {
					t.Fatalf("k=%d: restored hash %#x != source hash %#x", k, got, want)
				}
				for i := k; i < s.horizon; i++ {
					if s.preStep != nil {
						s.preStep(dst, i)
					}
					dst.Step()
					if got := dst.StateHash(); got != refStream[i] {
						t.Fatalf("k=%d: hash diverged at cycle %d: restored=%#x uninterrupted=%#x", k, i+1, got, refStream[i])
					}
				}
				if got := dst.Counters(); got != refCtr {
					t.Fatalf("k=%d: counters diverged:\nrestored:      %+v\nuninterrupted: %+v", k, got, refCtr)
				}
				if err := dst.CheckInvariants(); err != nil {
					t.Fatalf("k=%d: invariants after restored run: %v", k, err)
				}
			}
		})
	}
}

// TestSnapshotDoesNotPerturb: taking a snapshot must not change the source
// engine's behavior (transform pre-application clones, it must not mutate).
func TestSnapshotDoesNotPerturb(t *testing.T) {
	for _, s := range snapshotScenarios() {
		t.Run(s.name, func(t *testing.T) {
			a := s.build()
			b := s.build()
			for i := 0; i < s.horizon; i++ {
				if s.preStep != nil {
					s.preStep(a, i)
					s.preStep(b, i)
				}
				a.Step()
				_ = a.Snapshot() // every cycle, aggressively
				b.Step()
				if a.StateHash() != b.StateHash() {
					t.Fatalf("snapshotting perturbed the run at cycle %d", i+1)
				}
				if a.Quiescent() {
					break
				}
			}
		})
	}
}

// TestRestoreIdempotent: Snapshot(Restore(snap)) == snap, i.e. encode is a
// pure function of the restored state.
func TestRestoreIdempotent(t *testing.T) {
	s := snapshotScenarios()[0]
	src := s.build()
	for i := 0; i < 17; i++ {
		src.Step()
	}
	snap := src.Snapshot()
	dst := s.build()
	if err := dst.Restore(snap); err != nil {
		t.Fatal(err)
	}
	snap2 := dst.Snapshot()
	if string(snap) != string(snap2) {
		t.Fatal("re-encoding a restored engine changed the snapshot bytes")
	}
}

// TestRestoreIntoUsedEngine: restore must fully displace previous traffic.
func TestRestoreIntoUsedEngine(t *testing.T) {
	s := snapshotScenarios()[0]
	src := s.build()
	for i := 0; i < 25; i++ {
		src.Step()
	}
	snap := src.Snapshot()
	dst := s.build()
	for i := 0; i < 80; i++ { // drive the target somewhere else entirely
		dst.Step()
	}
	if err := dst.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if dst.StateHash() != src.StateHash() {
		t.Fatal("restore into a used engine did not reproduce the source state")
	}
}

func TestRestoreRejectsMismatchedTopology(t *testing.T) {
	e1, _ := chainScenario(DefaultConfig(), 8)
	snap := e1.Snapshot()

	e2, _ := chainScenario(DefaultConfig(), 6) // different size
	if err := e2.Restore(snap); err == nil || !strings.Contains(err.Error(), "topology fingerprint") {
		t.Fatalf("err = %v, want topology fingerprint mismatch", err)
	}

	cfg := DefaultConfig()
	cfg.BufferDepth = 4 // different kernel config
	e3, _ := chainScenario(cfg, 8)
	if err := e3.Restore(snap); err == nil || !strings.Contains(err.Error(), "topology fingerprint") {
		t.Fatalf("err = %v, want topology fingerprint mismatch", err)
	}

	cfg = DefaultConfig()
	cfg.DisableActiveSet = true // same topology hash inputs except mode flag
	e4, _ := chainScenario(cfg, 8)
	if err := e4.Restore(snap); err == nil || !strings.Contains(err.Error(), "DisableActiveSet") {
		t.Fatalf("err = %v, want DisableActiveSet mismatch", err)
	}
}

// FuzzSnapshotDecode holds Restore to the garbage-tolerance contract:
// arbitrary bytes — truncations, bit flips, adversarial section tables —
// never panic, and every rejection is an error naming where decoding failed
// (container header, crc, or a section by name). The checked-in corpus
// under testdata/fuzz pins regressions.
func FuzzSnapshotDecode(f *testing.F) {
	build := func() *Engine { e, _ := chainScenario(DefaultConfig(), 4); return e }
	valid := func(steps int) []byte {
		e := build()
		for i := 0; i < steps; i++ {
			e.Step()
		}
		return e.Snapshot()
	}
	f.Add([]byte{})
	f.Add([]byte("MDXSNAP\n"))
	f.Add(valid(0))
	f.Add(valid(7))
	f.Add(valid(40))
	snap := valid(7)
	f.Add(snap[:len(snap)/2])
	flipped := append([]byte{}, snap...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	// Snapshots of the shared-wire engine carry a phys-channel section the
	// fuzz target's chain topology does not have: restored whole they hit
	// the fingerprint rejection; cut or corrupted they exercise truncation
	// and crc failure inside the VC-bearing sections.
	vcValid := func(steps int) []byte {
		e := physSharedEngine()
		for i := 0; i < steps; i++ {
			e.Step()
		}
		return e.Snapshot()
	}
	vsnap := vcValid(9)
	f.Add(vsnap)
	f.Add(vsnap[:len(vsnap)/2])
	f.Add(vsnap[:len(vsnap)-7])
	f.Add(vsnap[:len(vsnap)-1])
	vflip := append([]byte{}, vsnap...)
	vflip[len(vflip)-9] ^= 0x10
	f.Add(vflip)
	f.Fuzz(func(t *testing.T, data []byte) {
		e := build()
		err := e.Restore(data)
		if err == nil {
			return
		}
		msg := err.Error()
		if !strings.HasPrefix(msg, "checkpoint: ") {
			t.Fatalf("rejection %q does not carry the checkpoint prefix", msg)
		}
		if !strings.Contains(msg, "section") && !strings.Contains(msg, "header") && !strings.Contains(msg, "crc") {
			t.Fatalf("rejection %q names neither a section nor the container framing", msg)
		}
	})
}
