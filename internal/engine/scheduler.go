package engine

import (
	"cmp"
	"slices"
)

// Active-set scheduling: each simulation phase visits only the elements that
// can possibly do work this cycle, instead of scanning the whole network.
//
//   - a link is active while its pipeline holds in-flight flits;
//   - a switch input port is active while it holds a cut-through state or
//     buffered flits (i.e. while allocate/traverse would not no-op on it);
//   - an endpoint is eject-active while its input buffer is non-empty and
//     inject-active while its source queue is non-empty.
//
// Determinism argument (DESIGN.md §5): every active list is kept sorted by
// the element's position in the corresponding full scan (link creation
// order; switch creation order × port index; endpoint creation order), so
// iterating a list visits elements in exactly the order the full scan
// would. Elements outside a list satisfy the phase's no-op condition, make
// no requests and touch no arbitration state, so skipping them is
// unobservable. Membership is maintained incrementally: elements are
// inserted at their sorted position when they become active (a flit lands,
// a packet is injected, a header is routed) and dropped during the owning
// phase's sweep once they go idle. The full-scan reference implementation
// is kept behind Config.DisableActiveSet and the differential tests assert
// bit-for-bit equivalence between the two modes.

// Activations are not inserted one-by-one (a sorted insert memmoves the
// tail of the list, which under load degenerates to quadratic work per
// cycle): they are appended to a per-list pending buffer and merged — one
// sort of the few newcomers plus one linear back-to-front merge — when the
// owning phase next runs.

// mergePending merges the sorted-by-key pending elements into the sorted
// active list and returns the grown list. pending is consumed (reset by the
// caller). Keys are unique: an element is appended to pending only while
// absent from both slices.
func mergePending[T any](active, pending []T, key func(T) int64) []T {
	if len(pending) == 0 {
		return active
	}
	if len(pending) <= 32 {
		// Typical case: a handful of newcomers per cycle. Insertion sort
		// beats the generic sort's setup cost at this size.
		for i := 1; i < len(pending); i++ {
			for j := i; j > 0 && key(pending[j]) < key(pending[j-1]); j-- {
				pending[j], pending[j-1] = pending[j-1], pending[j]
			}
		}
	} else {
		slices.SortFunc(pending, func(a, b T) int { return cmp.Compare(key(a), key(b)) })
	}
	i := len(active) - 1
	j := len(pending) - 1
	active = append(active, pending...)
	for k := len(active) - 1; j >= 0; k-- {
		if i >= 0 && key(active[i]) > key(pending[j]) {
			active[k] = active[i]
			i--
		} else {
			active[k] = pending[j]
			j--
		}
	}
	return active
}

// idleEvictAfter is the number of consecutive workless visits an element
// survives in its active list before the owning phase evicts it. Without
// this hysteresis a steady flow over a delay-1 link would leave and re-join
// the link list every single cycle (the pipe empties in deliverLinks and
// refills in traverse), funnelling the whole busy set through the pending
// sort each cycle. A lingering element is a no-op for its phase, so the
// eviction delay is unobservable in simulation state — it only trades a few
// wasted visits on a quiescing element for membership stability on a busy
// one.
const idleEvictAfter = 8

func linkKey(l *Link) int64     { return int64(l.id) }
func inPortKey(p *InPort) int64 { return p.ordKey }
func nodeKey(n *Node) int64     { return int64(n.ID) }

// The activate/merge methods live on the shard owning the element. During a
// parallel section only the owning shard calls them (delivery lands locally,
// allocation and traversal touch only local ports); cross-shard activations
// — a boundary-link push, an injection triggered by a delivery hook — run
// single-threaded at a barrier or between Steps and are routed through the
// owning shard explicitly (applyFlits, Engine.activateInject).

// activateLink marks a link as carrying in-flight flits.
func (s *engShard) activateLink(l *Link) {
	if l.active {
		return
	}
	l.active = true
	s.pendLinks = append(s.pendLinks, l)
}

// activateAlloc marks a switch input port as routable/traversable.
func (s *engShard) activateAlloc(in *InPort) {
	if in.active {
		return
	}
	in.active = true
	s.pendAlloc = append(s.pendAlloc, in)
}

// activateEject marks an endpoint as holding arrived flits.
func (s *engShard) activateEject(ep *Node) {
	if ep.ejectActive {
		return
	}
	ep.ejectActive = true
	s.pendEject = append(s.pendEject, ep)
}

// activateInject marks an endpoint as holding queued source flits.
func (s *engShard) activateInject(ep *Node) {
	if ep.injectActive {
		return
	}
	ep.injectActive = true
	s.pendInject = append(s.pendInject, ep)
}

// activateInject routes an injection activation to the endpoint's owning
// shard. Injection happens between Steps or from single-threaded hook
// contexts, never concurrently with a parallel section.
func (e *Engine) activateInject(ep *Node) {
	e.ensureShards()
	e.shards[ep.shard].activateInject(ep)
}

// Each phase merges its pending buffer immediately before iterating, so an
// activation becomes visible in exactly the cycle the full scan would see
// it (deliverLinks lands flits that eject and allocate must process in the
// same Step).

func (s *engShard) mergeLinks() {
	s.activeLinks = mergePending(s.activeLinks, s.pendLinks, linkKey)
	s.pendLinks = s.pendLinks[:0]
}

func (s *engShard) mergeAlloc() {
	s.activeAlloc = mergePending(s.activeAlloc, s.pendAlloc, inPortKey)
	s.pendAlloc = s.pendAlloc[:0]
}

func (s *engShard) mergeEject() {
	s.activeEject = mergePending(s.activeEject, s.pendEject, nodeKey)
	s.pendEject = s.pendEject[:0]
}

func (s *engShard) mergeInject() {
	s.activeInject = mergePending(s.activeInject, s.pendInject, nodeKey)
	s.pendInject = s.pendInject[:0]
}

// Counters exposes cheap per-run observability for the kernel hot path: how
// many elements each phase visited versus skipped thanks to active-set
// scheduling, and how the route-state pool behaved. All values are
// cumulative since engine creation.
type Counters struct {
	// Cycles is the number of Step calls.
	Cycles int64
	// LinkVisits / LinkVisitsSkipped count links examined vs skipped by the
	// link-delivery phase.
	LinkVisits, LinkVisitsSkipped int64
	// SwitchPortVisits / SwitchPortVisitsSkipped count switch input ports
	// examined vs skipped by the allocation phase (traversal walks the same
	// active list and is not double-counted).
	SwitchPortVisits, SwitchPortVisitsSkipped int64
	// EjectVisits / EjectVisitsSkipped count endpoints examined vs skipped
	// by the ejection phase.
	EjectVisits, EjectVisitsSkipped int64
	// InjectVisits / InjectVisitsSkipped count endpoints examined vs skipped
	// by the injection phase.
	InjectVisits, InjectVisitsSkipped int64
	// RouteStatesAllocated / RouteStatesReused count cut-through states
	// taken from the heap vs recycled from the engine's pool.
	RouteStatesAllocated, RouteStatesReused int64
}

// Visits sums the elements examined across all phases.
func (c Counters) Visits() int64 {
	return c.LinkVisits + c.SwitchPortVisits + c.EjectVisits + c.InjectVisits
}

// Skipped sums the elements active-set scheduling avoided examining.
func (c Counters) Skipped() int64 {
	return c.LinkVisitsSkipped + c.SwitchPortVisitsSkipped + c.EjectVisitsSkipped + c.InjectVisitsSkipped
}

// SkipRatio is Skipped over the full-scan visit count (Visits+Skipped),
// i.e. the fraction of per-cycle scanning the scheduler eliminated.
func (c Counters) SkipRatio() float64 {
	total := c.Visits() + c.Skipped()
	if total == 0 {
		return 0
	}
	return float64(c.Skipped()) / float64(total)
}

// Counters returns a snapshot of the engine's hot-path counters.
func (e *Engine) Counters() Counters { return e.ctr }
