package engine

import "fmt"

// CheckInvariants audits the kernel's conservation laws and returns the
// first violation found, or nil. It is O(network size) and intended for
// tests (property tests call it every cycle) and debugging, not hot loops.
//
// Invariants checked:
//
//  1. credit conservation: for every connected output port,
//     credits + flits buffered downstream + flits in flight on the link
//     equals the downstream buffer capacity;
//  2. ownership consistency: a held output port's owner has an active
//     cut-through state that includes that port as granted, and vice versa;
//  3. grant accounting: each route state's granted count matches its flags;
//  4. flit accounting: the resident counter equals the flits actually
//     present in injection queues, input buffers and link pipelines.
func (e *Engine) CheckInvariants() error {
	var counted int64
	for _, n := range e.nodes {
		counted += int64(n.InjectQueueLen())
		for _, in := range n.In {
			counted += int64(len(in.buf))
		}
		for _, out := range n.Out {
			if out.link == nil {
				if out.owner != nil {
					return fmt.Errorf("engine: unconnected %s.out%d has an owner", n.Name, out.idx)
				}
				continue
			}
			counted += int64(len(out.link.pipe))
			down := out.link.to
			if got := out.credits + len(down.buf) + len(out.link.pipe); got != down.cap {
				return fmt.Errorf("engine: credit leak at %s.out%d: credits=%d + buffered=%d + inflight=%d != cap=%d",
					n.Name, out.idx, out.credits, len(down.buf), len(out.link.pipe), down.cap)
			}
			if out.credits < 0 {
				return fmt.Errorf("engine: negative credits at %s.out%d", n.Name, out.idx)
			}
			if owner := out.owner; owner != nil {
				rs := owner.route
				if rs == nil {
					return fmt.Errorf("engine: %s.out%d owned by idle input %s.in%d",
						n.Name, out.idx, owner.node.Name, owner.idx)
				}
				found := false
				for i, o := range rs.outs {
					if owner.node.Out[o] == out {
						if !rs.granted[i] {
							return fmt.Errorf("engine: %s.out%d owned but not granted in its route state", n.Name, out.idx)
						}
						found = true
					}
				}
				if !found {
					return fmt.Errorf("engine: %s.out%d owned by a packet that does not request it", n.Name, out.idx)
				}
			}
		}
		for _, in := range n.In {
			rs := in.route
			if rs == nil || rs.sink {
				continue
			}
			granted := 0
			for i, o := range rs.outs {
				op := n.Out[o]
				if rs.granted[i] {
					granted++
					if op.owner != in {
						return fmt.Errorf("engine: %s.in%d thinks it holds out%d but the port disagrees", n.Name, in.idx, o)
					}
				} else if op.owner == in {
					return fmt.Errorf("engine: %s.in%d owns out%d without a grant flag", n.Name, in.idx, o)
				}
			}
			if granted != rs.nGranted {
				return fmt.Errorf("engine: %s.in%d grant count %d != flags %d", n.Name, in.idx, rs.nGranted, granted)
			}
		}
	}
	if counted != e.resident {
		return fmt.Errorf("engine: resident counter %d != counted flits %d", e.resident, counted)
	}
	return nil
}
