package engine

import (
	"testing"
)

// packetPresentAt reports whether any flit of the packet is buffered at the
// node or in flight on a link into it.
func packetPresentAt(e *Engine, n *Node, id uint64) bool {
	for _, in := range n.In {
		for i := range in.buf {
			if in.buf[i].PacketID == id {
				return true
			}
		}
	}
	for _, l := range e.links {
		if l.to.node != n {
			continue
		}
		for i := range l.pipe {
			if l.pipe[i].f.PacketID == id {
				return true
			}
		}
	}
	return false
}

func totalReceived(eps []*Node) int64 {
	var sum int64
	for _, ep := range eps {
		sum += ep.Received
	}
	return sum
}

func TestKillSwitchMidRunConserves(t *testing.T) {
	// Kill a mid-chain switch at several different moments; after every kill
	// the conservation invariants must hold on every subsequent cycle, the
	// network must drain, and every injected packet must be accounted for as
	// either received or dropped.
	for _, killAt := range []int{0, 5, 12, 25, 60} {
		t.Run("", func(t *testing.T) {
			e, eps := chainScenario(DefaultConfig(), 8)
			var injected int64
			for _, ep := range eps {
				injected += ep.Injected
			}
			for c := 0; c < killAt; c++ {
				e.Step()
			}
			killed := e.KillSwitch(e.Switches()[4])
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("invariants broken immediately after kill: %v", err)
			}
			for i := 1; i < len(killed); i++ {
				if killed[i].ID <= killed[i-1].ID {
					t.Fatalf("killed list not sorted/unique: %v then %v", killed[i-1].ID, killed[i].ID)
				}
			}
			for _, k := range killed {
				if k.Header == nil {
					t.Errorf("killed packet %d lost its header", k.ID)
				}
			}
			for c := 0; c < 600; c++ {
				e.Step()
				if err := e.CheckInvariants(); err != nil {
					t.Fatalf("invariants broken %d cycles after kill: %v", c+1, err)
				}
				if e.Quiescent() {
					break
				}
			}
			if !e.Quiescent() {
				t.Fatal("network did not drain after kill")
			}
			if got := totalReceived(eps) + e.Dropped(); got != injected {
				t.Errorf("accounting: received+dropped=%d, injected=%d (killed=%d)",
					got, injected, len(killed))
			}
		})
	}
}

func TestKillSwitchDeterministic(t *testing.T) {
	// Two identical engines killed at the same cycle must report identical
	// casualties and stay in per-cycle StateHash lockstep afterwards.
	run := func() (*Engine, []KilledPacket) {
		e, _ := chainScenario(DefaultConfig(), 8)
		for c := 0; c < 15; c++ {
			e.Step()
		}
		return e, e.KillSwitch(e.Switches()[3])
	}
	a, ka := run()
	b, kb := run()
	if len(ka) != len(kb) {
		t.Fatalf("casualty counts differ: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i].ID != kb[i].ID || ka[i].AlreadyDropped != kb[i].AlreadyDropped {
			t.Fatalf("casualty %d differs: %+v vs %+v", i, ka[i], kb[i])
		}
	}
	if len(ka) == 0 {
		t.Fatal("expected in-flight casualties at cycle 15")
	}
	ha := hashStream(a, 300)
	hb := hashStream(b, 300)
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("hash diverged %d cycles after kill: %#x vs %#x", i+1, ha[i], hb[i])
		}
	}
}

func TestKillSwitchSecondKillIsNoOp(t *testing.T) {
	e, _ := chainScenario(DefaultConfig(), 8)
	for c := 0; c < 15; c++ {
		e.Step()
	}
	sw := e.Switches()[3]
	first := e.KillSwitch(sw)
	if len(first) == 0 {
		t.Fatal("expected casualties on first kill")
	}
	if again := e.KillSwitch(sw); len(again) != 0 {
		t.Fatalf("second kill reported %d casualties; the purge was incomplete", len(again))
	}
}

func TestKillSwitchAlreadyDroppedNotDoubleCounted(t *testing.T) {
	// A packet the routing layer already sank (dropped on arrival at a failed
	// switch) and that is then wounded by a second fault must not count
	// toward Dropped twice.
	e, _ := chainScenario(DefaultConfig(), 6)
	sws := e.Switches()
	e.KillSwitch(sws[3]) // quiet network: no casualties, but arrivals now sink
	var victim uint64
	for c := 0; c < 300 && victim == 0; c++ {
		e.Step()
		for _, in := range sws[3].In {
			rs := in.route
			if rs == nil || !rs.sink || rs.header == nil {
				continue
			}
			// The sinking packet must still occupy the upstream switch for
			// the second fault to wound it.
			if packetPresentAt(e, sws[2], rs.header.PacketID) {
				victim = rs.header.PacketID
			}
		}
	}
	if victim == 0 {
		t.Fatal("no packet found sinking at the dead switch with an upstream tail")
	}
	before := e.Dropped()
	killed := e.KillSwitch(sws[2])
	var fresh, already int64
	found := false
	for _, k := range killed {
		if k.AlreadyDropped {
			already++
		} else {
			fresh++
		}
		if k.ID == victim {
			found = true
			if !k.AlreadyDropped {
				t.Errorf("victim %d not marked AlreadyDropped", victim)
			}
		}
	}
	if !found {
		t.Fatalf("victim %d missing from casualty list %v", victim, killed)
	}
	if got := e.Dropped() - before; got != fresh {
		t.Errorf("Dropped grew by %d, want %d (fresh kills only; %d already dropped)", got, fresh, already)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !e.RunUntilQuiescent(600) {
		t.Fatal("network did not drain")
	}
}

func TestKillSwitchPanicsOnEndpoint(t *testing.T) {
	e, eps := chainScenario(DefaultConfig(), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("KillSwitch on an endpoint did not panic")
		}
	}()
	e.KillSwitch(eps[0])
}

func TestPreCycleHookObservesEveryStep(t *testing.T) {
	e, _ := chainScenario(DefaultConfig(), 4)
	var cycles []int64
	e.PreCycle = func(c int64) { cycles = append(cycles, c) }
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if len(cycles) != 5 {
		t.Fatalf("hook ran %d times, want 5", len(cycles))
	}
	for i, c := range cycles {
		if c != int64(i) {
			t.Fatalf("hook saw cycle %d at step %d", c, i)
		}
	}
}
