// Package cdg builds and checks the static channel dependency graph (CDG)
// of a routing configuration — the Dally–Seitz criterion the paper's
// Section 5 argument rests on: deterministic cut-through routing is
// deadlock-free if the "holds channel u, waits for channel v" relation over
// network channels is acyclic.
//
// Channels are the output ports of routers and crossbars. Edges come from:
//
//   - every point-to-point class (all source/destination pairs, including
//     detoured routes): consecutive channels on the path;
//   - every broadcast request leg (source to S-XB): consecutive channels;
//   - the broadcast fan tree. Because the S-XB serializes broadcasts, at
//     most one fan is ever mid-acquisition (paper Section 3.2; verified
//     dynamically by experiments E1/E8), so the whole tree behaves as one
//     composite resource: the analyzer contracts all tree channels into a
//     single node. An edge out of the contracted node into a channel that
//     can lead back into it is exactly the Fig. 9 cyclic wait.
//
// With NaiveBroadcast (no serialization) the contraction is unsound;
// instead the analyzer reports the hazard directly: two simultaneous fans
// whose trees share two or more channels can acquire them in opposite
// orders (paper Fig. 5).
package cdg

import (
	"fmt"

	"sr2201/internal/flit"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
	"sr2201/internal/topo"
)

// Channel identifies one directed network channel: the out-port of a router
// or crossbar.
type Channel struct {
	// Router is true for a relay-switch channel; false for a crossbar.
	Router bool
	// Coord locates a router channel; Line a crossbar channel.
	Coord geom.Coord
	Line  geom.Line
	// Out is the output port index.
	Out int
}

// String renders the channel, e.g. "RTC(1,2).out0" or "XB0(0,1).out2".
func (c Channel) String() string {
	if c.Router {
		return fmt.Sprintf("RTC%s.out%d", c.Coord, c.Out)
	}
	return fmt.Sprintf("XB%d%s.out%d", c.Line.Dim, c.Line.Fixed, c.Out)
}

// Result is the analyzer's verdict.
type Result struct {
	// Channels and Edges count the contracted graph.
	Channels, Edges int
	// Acyclic reports whether the dependency graph has no cycle — the
	// sufficient condition for deadlock freedom.
	Acyclic bool
	// Cycle names the channels of one dependency cycle when !Acyclic. The
	// contracted broadcast tree appears as "BROADCAST-TREE".
	Cycle []string
	// NaiveHazard reports the unserialized-broadcast hazard (Fig. 5): two
	// fan trees overlapping on two or more channels.
	NaiveHazard bool
	// SharedFanChannels counts the overlap behind NaiveHazard.
	SharedFanChannels int
}

// treeNode is the contracted broadcast-tree vertex id marker.
const treeName = "BROADCAST-TREE"

// Analyze builds the CDG for the policy over the given shape and checks it.
// naive selects the unserialized broadcast analysis. Sources for broadcasts
// default to every healthy PE. The graph accumulates in a topo.Builder —
// the same prover every registered scheme certifies against — and the
// verdict is its Certificate, re-expressed in the historical Result form.
func Analyze(p *routing.Policy, shape geom.Shape, naive bool) (Result, error) {
	b := topo.NewBuilder()
	if naive {
		registerUnicast(b, p, shape, 1)
		return analyzeNaive(b, p, shape)
	}
	if err := RegisterDependences(b, p, shape); err != nil {
		return Result{}, err
	}
	cert := b.Certificate(SchemeName(p, shape))
	return Result{Channels: cert.Channels, Edges: cert.Edges, Acyclic: cert.Acyclic, Cycle: cert.Cycle}, nil
}

// SchemeName names the policy instance for certificates, e.g.
// "mdx-unified-4x4" or "mdx-separate-dxb-4x4".
func SchemeName(p *routing.Policy, shape geom.Shape) string {
	variant := "unified"
	if p.EffectiveSXB() != p.EffectiveDXB() {
		variant = "separate-dxb"
	}
	return fmt.Sprintf("mdx-%s-%s", variant, shape)
}

// RegisterDependences records the paper's serialized scheme in the
// builder: every point-to-point class, every broadcast request leg, and
// the broadcast fan tree contracted into one composite vertex (the S-XB
// serializes broadcasts, so the whole tree is one resource). This is the
// construction Analyze certifies and the topo registry re-certifies in CI.
func RegisterDependences(b *topo.Builder, p *routing.Policy, shape geom.Shape) error {
	return registerScaled(b, p, shape, 1)
}

// RegisterEscapeDependences records the escape subnetwork of a network built
// with vcs virtual channels per wire: under escape-VC adaptive routing
// (routing.VCPolicy) no packet ever enters lane 0 at a crossbar, and a
// packet on lane 0 stays there until delivery, so the escape channel's
// internal dependences are exactly the unified scheme's — with every channel
// renamed to lane 0 of its wire, i.e. every out-port index scaled by vcs
// (the mdxb port conventions scale the PE port the same way). Certifying
// this graph acyclic is the static half of the escape-channel deadlock
// argument; the refutation test registers a mis-ordered (separate D-XB)
// variant the same way and exhibits its cycle.
func RegisterEscapeDependences(b *topo.Builder, p *routing.Policy, shape geom.Shape, vcs int) error {
	if vcs < 2 {
		return fmt.Errorf("cdg: escape registration needs >= 2 virtual channels, got %d", vcs)
	}
	return registerScaled(b, p, shape, vcs)
}

// registerScaled is the shared construction: the serialized scheme's
// dependences with every channel's out-port scaled by vcs (1 = the plain
// single-channel network).
func registerScaled(b *topo.Builder, p *routing.Policy, shape geom.Shape, vcs int) error {
	registerUnicast(b, p, shape, vcs)

	treeID := b.Composite(treeName)
	shape.Enumerate(func(src geom.Coord) bool {
		req, tree, _, err := broadcastChannels(p, shape, src, false)
		if err != nil {
			return true // sources that cannot broadcast contribute nothing
		}
		req, tree = scaleChannels(req, vcs), scaleChannels(tree, vcs)
		b.Path(namesOf(req)...)
		if len(req) > 0 && len(tree) > 0 {
			b.Edge(b.Channel(req[len(req)-1].String()), treeID)
		}
		for _, c := range tree {
			b.Absorb(treeID, b.Channel(c.String()))
		}
		return true
	})
	return nil
}

// registerUnicast records every point-to-point class: every reachable
// pair contributes its path; with the pivot extension enabled,
// otherwise-unreachable pairs contribute their two-phase route.
func registerUnicast(b *topo.Builder, p *routing.Policy, shape geom.Shape, vcs int) {
	shape.Enumerate(func(src geom.Coord) bool {
		shape.Enumerate(func(dst geom.Coord) bool {
			path, err := p.UnicastPath(src, dst)
			if err != nil {
				if !p.PivotEnabled() {
					return true // unreachable pairs contribute no dependencies
				}
				path, err = p.PivotPath(src, dst)
				if err != nil {
					return true
				}
			}
			b.Path(namesOf(scaleChannels(channelsOf(path), vcs))...)
			return true
		})
		return true
	})
}

// scaleChannels renames channels to lane 0 of their wire in a vcs-lane
// network (out-port indices multiplied by vcs). A no-op at vcs = 1.
func scaleChannels(cs []Channel, vcs int) []Channel {
	if vcs == 1 {
		return cs
	}
	out := make([]Channel, len(cs))
	for i, c := range cs {
		c.Out *= vcs
		out[i] = c
	}
	return out
}

// namesOf renders a channel sequence for the builder.
func namesOf(cs []Channel) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	return out
}

// channelsOf converts a hop path into its channel sequence.
func channelsOf(path []routing.Hop) []Channel {
	var out []Channel
	for _, h := range path {
		switch h.Kind {
		case routing.HopRouter:
			out = append(out, Channel{Router: true, Coord: h.Coord, Out: h.Out})
		case routing.HopXB:
			out = append(out, Channel{Line: h.Line, Out: h.Out})
		}
	}
	return out
}

// broadcastChannels replays the policy's broadcast decisions from src and
// returns the request-leg channel sequence and the fan-tree channel set
// (channels carrying RC=broadcast), with parent->child tree edges.
func broadcastChannels(p *routing.Policy, shape geom.Shape, src geom.Coord, naive bool) (request []Channel, tree []Channel, treeEdges [][2]Channel, err error) {
	type node struct {
		atRouter bool
		coord    geom.Coord
		line     geom.Line
		in       int
		h        *flit.Header
		parent   *Channel
	}
	rc := flit.RCBroadcastRequest
	if naive {
		rc = flit.RCBroadcast
	}
	dims := shape.Dims()
	queue := []node{{atRouter: true, coord: src, in: dims, h: &flit.Header{Src: src, BroadcastOrigin: src, RC: rc}}}
	seen := map[Channel]bool{}
	limit := shape.Size()*(dims+2)*4 + 64
	steps := 0
	for len(queue) > 0 {
		if steps++; steps > limit {
			return nil, nil, nil, fmt.Errorf("cdg: broadcast walk from %v exceeded %d steps", src, limit)
		}
		nd := queue[0]
		queue = queue[1:]
		var outs []int
		var transform func(*flit.Header) *flit.Header
		var derr error
		if nd.atRouter {
			dec, e := p.RouteRouter(nil, nd.coord, nd.in, nd.h)
			outs, transform, derr = dec.Outs, dec.Transform, e
		} else {
			dec, e := p.RouteXB(nil, nd.line, nd.in, nd.h)
			outs, transform, derr = dec.Outs, dec.Transform, e
		}
		if derr != nil {
			if nd.h.RC == flit.RCBroadcastRequest {
				return nil, nil, nil, derr
			}
			continue // dead fan branch (over-faulted network)
		}
		for _, out := range outs {
			var ch Channel
			if nd.atRouter {
				ch = Channel{Router: true, Coord: nd.coord, Out: out}
			} else {
				ch = Channel{Line: nd.line, Out: out}
			}
			h := nd.h
			if transform != nil {
				h = transform(h)
			}
			if h.RC == flit.RCBroadcastRequest {
				request = append(request, ch)
			} else if !seen[ch] {
				seen[ch] = true
				tree = append(tree, ch)
				if nd.parent != nil {
					treeEdges = append(treeEdges, [2]Channel{*nd.parent, ch})
				} else if len(request) > 0 {
					treeEdges = append(treeEdges, [2]Channel{request[len(request)-1], ch})
				}
			}
			// Descend unless this was a PE delivery port.
			if nd.atRouter && out == dims {
				continue
			}
			chCopy := ch
			if nd.atRouter {
				queue = append(queue, node{
					line:   geom.LineOf(nd.coord, out),
					in:     nd.coord[out],
					h:      h,
					parent: &chCopy,
				})
			} else {
				queue = append(queue, node{
					atRouter: true,
					coord:    nd.line.Point(out),
					in:       nd.line.Dim,
					h:        h,
					parent:   &chCopy,
				})
			}
		}
	}
	return request, tree, treeEdges, nil
}

// analyzeNaive checks the unserialized hazard: two distinct sources whose
// fan trees overlap on >= 2 channels can deadlock by acquiring them in
// opposite orders. It also still reports unicast-graph cycles (via the
// builder's certificate over the uncontracted graph).
func analyzeNaive(b *topo.Builder, p *routing.Policy, shape geom.Shape) (Result, error) {
	var trees [][]Channel
	shape.Enumerate(func(src geom.Coord) bool {
		_, tree, _, err := broadcastChannels(p, shape, src, true)
		if err == nil && len(tree) > 0 {
			trees = append(trees, tree)
		}
		return len(trees) < 8 // a handful of representatives suffice
	})
	cert := b.Certificate("mdx-naive")
	res := Result{Channels: cert.Channels, Edges: cert.Edges, Cycle: cert.Cycle}
	for i := 0; i < len(trees) && !res.NaiveHazard; i++ {
		set := map[Channel]bool{}
		for _, c := range trees[i] {
			set[c] = true
		}
		for j := i + 1; j < len(trees); j++ {
			shared := 0
			for _, c := range trees[j] {
				if set[c] {
					shared++
				}
			}
			if shared >= 2 {
				res.NaiveHazard = true
				res.SharedFanChannels = shared
				break
			}
		}
	}
	res.Acyclic = res.Cycle == nil && !res.NaiveHazard
	return res, nil
}
