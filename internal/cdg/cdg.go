// Package cdg builds and checks the static channel dependency graph (CDG)
// of a routing configuration — the Dally–Seitz criterion the paper's
// Section 5 argument rests on: deterministic cut-through routing is
// deadlock-free if the "holds channel u, waits for channel v" relation over
// network channels is acyclic.
//
// Channels are the output ports of routers and crossbars. Edges come from:
//
//   - every point-to-point class (all source/destination pairs, including
//     detoured routes): consecutive channels on the path;
//   - every broadcast request leg (source to S-XB): consecutive channels;
//   - the broadcast fan tree. Because the S-XB serializes broadcasts, at
//     most one fan is ever mid-acquisition (paper Section 3.2; verified
//     dynamically by experiments E1/E8), so the whole tree behaves as one
//     composite resource: the analyzer contracts all tree channels into a
//     single node. An edge out of the contracted node into a channel that
//     can lead back into it is exactly the Fig. 9 cyclic wait.
//
// With NaiveBroadcast (no serialization) the contraction is unsound;
// instead the analyzer reports the hazard directly: two simultaneous fans
// whose trees share two or more channels can acquire them in opposite
// orders (paper Fig. 5).
package cdg

import (
	"fmt"
	"sort"

	"sr2201/internal/flit"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
)

// Channel identifies one directed network channel: the out-port of a router
// or crossbar.
type Channel struct {
	// Router is true for a relay-switch channel; false for a crossbar.
	Router bool
	// Coord locates a router channel; Line a crossbar channel.
	Coord geom.Coord
	Line  geom.Line
	// Out is the output port index.
	Out int
}

// String renders the channel, e.g. "RTC(1,2).out0" or "XB0(0,1).out2".
func (c Channel) String() string {
	if c.Router {
		return fmt.Sprintf("RTC%s.out%d", c.Coord, c.Out)
	}
	return fmt.Sprintf("XB%d%s.out%d", c.Line.Dim, c.Line.Fixed, c.Out)
}

// Result is the analyzer's verdict.
type Result struct {
	// Channels and Edges count the contracted graph.
	Channels, Edges int
	// Acyclic reports whether the dependency graph has no cycle — the
	// sufficient condition for deadlock freedom.
	Acyclic bool
	// Cycle names the channels of one dependency cycle when !Acyclic. The
	// contracted broadcast tree appears as "BROADCAST-TREE".
	Cycle []string
	// NaiveHazard reports the unserialized-broadcast hazard (Fig. 5): two
	// fan trees overlapping on two or more channels.
	NaiveHazard bool
	// SharedFanChannels counts the overlap behind NaiveHazard.
	SharedFanChannels int
}

// treeNode is the contracted broadcast-tree vertex id marker.
const treeName = "BROADCAST-TREE"

// Analyze builds the CDG for the policy over the given shape and checks it.
// naive selects the unserialized broadcast analysis. Sources for broadcasts
// default to every healthy PE.
func Analyze(p *routing.Policy, shape geom.Shape, naive bool) (Result, error) {
	b := newBuilder()

	// Point-to-point classes: every reachable pair contributes its path;
	// with the pivot extension enabled, otherwise-unreachable pairs
	// contribute their two-phase route.
	shape.Enumerate(func(src geom.Coord) bool {
		shape.Enumerate(func(dst geom.Coord) bool {
			path, err := p.UnicastPath(src, dst)
			if err != nil {
				if !p.PivotEnabled() {
					return true // unreachable pairs contribute no dependencies
				}
				path, err = p.PivotPath(src, dst)
				if err != nil {
					return true
				}
			}
			b.addPath(channelsOf(path))
			return true
		})
		return true
	})

	if naive {
		return b.analyzeNaive(p, shape)
	}
	return b.analyzeSerialized(p, shape)
}

// channelsOf converts a hop path into its channel sequence.
func channelsOf(path []routing.Hop) []Channel {
	var out []Channel
	for _, h := range path {
		switch h.Kind {
		case routing.HopRouter:
			out = append(out, Channel{Router: true, Coord: h.Coord, Out: h.Out})
		case routing.HopXB:
			out = append(out, Channel{Line: h.Line, Out: h.Out})
		}
	}
	return out
}

// builder accumulates the raw channel graph.
type builder struct {
	ids   map[Channel]int
	names []string
	adj   map[int]map[int]bool
}

func newBuilder() *builder {
	return &builder{ids: map[Channel]int{}, adj: map[int]map[int]bool{}}
}

func (b *builder) id(c Channel) int {
	if v, ok := b.ids[c]; ok {
		return v
	}
	v := len(b.names)
	b.ids[c] = v
	b.names = append(b.names, c.String())
	return v
}

func (b *builder) addEdge(u, v int) {
	if u == v {
		return
	}
	if b.adj[u] == nil {
		b.adj[u] = map[int]bool{}
	}
	b.adj[u][v] = true
}

func (b *builder) addPath(cs []Channel) {
	for i := 1; i < len(cs); i++ {
		b.addEdge(b.id(cs[i-1]), b.id(cs[i]))
	}
}

// broadcastChannels replays the policy's broadcast decisions from src and
// returns the request-leg channel sequence and the fan-tree channel set
// (channels carrying RC=broadcast), with parent->child tree edges.
func broadcastChannels(p *routing.Policy, shape geom.Shape, src geom.Coord, naive bool) (request []Channel, tree []Channel, treeEdges [][2]Channel, err error) {
	type node struct {
		atRouter bool
		coord    geom.Coord
		line     geom.Line
		in       int
		h        *flit.Header
		parent   *Channel
	}
	rc := flit.RCBroadcastRequest
	if naive {
		rc = flit.RCBroadcast
	}
	dims := shape.Dims()
	queue := []node{{atRouter: true, coord: src, in: dims, h: &flit.Header{Src: src, BroadcastOrigin: src, RC: rc}}}
	seen := map[Channel]bool{}
	limit := shape.Size()*(dims+2)*4 + 64
	steps := 0
	for len(queue) > 0 {
		if steps++; steps > limit {
			return nil, nil, nil, fmt.Errorf("cdg: broadcast walk from %v exceeded %d steps", src, limit)
		}
		nd := queue[0]
		queue = queue[1:]
		var outs []int
		var transform func(*flit.Header) *flit.Header
		var derr error
		if nd.atRouter {
			dec, e := p.RouteRouter(nil, nd.coord, nd.in, nd.h)
			outs, transform, derr = dec.Outs, dec.Transform, e
		} else {
			dec, e := p.RouteXB(nil, nd.line, nd.in, nd.h)
			outs, transform, derr = dec.Outs, dec.Transform, e
		}
		if derr != nil {
			if nd.h.RC == flit.RCBroadcastRequest {
				return nil, nil, nil, derr
			}
			continue // dead fan branch (over-faulted network)
		}
		for _, out := range outs {
			var ch Channel
			if nd.atRouter {
				ch = Channel{Router: true, Coord: nd.coord, Out: out}
			} else {
				ch = Channel{Line: nd.line, Out: out}
			}
			h := nd.h
			if transform != nil {
				h = transform(h)
			}
			if h.RC == flit.RCBroadcastRequest {
				request = append(request, ch)
			} else if !seen[ch] {
				seen[ch] = true
				tree = append(tree, ch)
				if nd.parent != nil {
					treeEdges = append(treeEdges, [2]Channel{*nd.parent, ch})
				} else if len(request) > 0 {
					treeEdges = append(treeEdges, [2]Channel{request[len(request)-1], ch})
				}
			}
			// Descend unless this was a PE delivery port.
			if nd.atRouter && out == dims {
				continue
			}
			chCopy := ch
			if nd.atRouter {
				queue = append(queue, node{
					line:   geom.LineOf(nd.coord, out),
					in:     nd.coord[out],
					h:      h,
					parent: &chCopy,
				})
			} else {
				queue = append(queue, node{
					atRouter: true,
					coord:    nd.line.Point(out),
					in:       nd.line.Dim,
					h:        h,
					parent:   &chCopy,
				})
			}
		}
	}
	return request, tree, treeEdges, nil
}

// analyzeSerialized adds the request legs and the contracted fan tree, then
// searches for cycles.
func (b *builder) analyzeSerialized(p *routing.Policy, shape geom.Shape) (Result, error) {
	// The tree node.
	treeID := len(b.names)
	b.names = append(b.names, treeName)
	members := map[int]bool{}

	shape.Enumerate(func(src geom.Coord) bool {
		req, tree, _, err := broadcastChannels(p, shape, src, false)
		if err != nil {
			return true // sources that cannot broadcast contribute nothing
		}
		b.addPath(req)
		if len(req) > 0 && len(tree) > 0 {
			b.addEdge(b.id(req[len(req)-1]), treeID)
		}
		for _, c := range tree {
			members[b.id(c)] = true
		}
		return true
	})

	// Contract: redirect edges touching members onto treeID.
	contracted := map[int]map[int]bool{}
	redirect := func(v int) int {
		if members[v] {
			return treeID
		}
		return v
	}
	edges := 0
	for u, vs := range b.adj {
		cu := redirect(u)
		for v := range vs {
			cv := redirect(v)
			if cu == cv {
				continue
			}
			if contracted[cu] == nil {
				contracted[cu] = map[int]bool{}
			}
			if !contracted[cu][cv] {
				contracted[cu][cv] = true
				edges++
			}
		}
	}

	res := Result{Channels: len(b.names) - len(members), Edges: edges}
	cycle := findCycle(contracted, b.names)
	res.Acyclic = cycle == nil
	res.Cycle = cycle
	return res, nil
}

// analyzeNaive checks the unserialized hazard: two distinct sources whose
// fan trees overlap on >= 2 channels can deadlock by acquiring them in
// opposite orders. It also still reports unicast-graph cycles.
func (b *builder) analyzeNaive(p *routing.Policy, shape geom.Shape) (Result, error) {
	var trees [][]Channel
	shape.Enumerate(func(src geom.Coord) bool {
		_, tree, _, err := broadcastChannels(p, shape, src, true)
		if err == nil && len(tree) > 0 {
			trees = append(trees, tree)
		}
		return len(trees) < 8 // a handful of representatives suffice
	})
	res := Result{Channels: len(b.names)}
	for i := 0; i < len(trees) && !res.NaiveHazard; i++ {
		set := map[Channel]bool{}
		for _, c := range trees[i] {
			set[c] = true
		}
		for j := i + 1; j < len(trees); j++ {
			shared := 0
			for _, c := range trees[j] {
				if set[c] {
					shared++
				}
			}
			if shared >= 2 {
				res.NaiveHazard = true
				res.SharedFanChannels = shared
				break
			}
		}
	}
	for _, vs := range b.adj {
		res.Edges += len(vs)
	}
	cycle := findCycle(b.adj, b.names)
	res.Acyclic = cycle == nil && !res.NaiveHazard
	res.Cycle = cycle
	return res, nil
}

// findCycle runs an iterative DFS over the graph and returns the names of
// one cycle's vertices, or nil.
func findCycle(adj map[int]map[int]bool, names []string) []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	parent := map[int]int{}
	var cycleAt = -1

	var nodes []int
	for u := range adj {
		nodes = append(nodes, u)
	}
	sort.Ints(nodes)

	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		var targets []int
		for v := range adj[u] {
			targets = append(targets, v)
		}
		sort.Ints(targets)
		for _, v := range targets {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				parent[v] = u
				cycleAt = v
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, u := range nodes {
		if color[u] == white {
			if dfs(u) {
				break
			}
		}
	}
	if cycleAt < 0 {
		return nil
	}
	var cyc []string
	cur := cycleAt
	for {
		cyc = append(cyc, names[cur])
		cur = parent[cur]
		if cur == cycleAt {
			break
		}
	}
	for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
		cyc[i], cyc[j] = cyc[j], cyc[i]
	}
	return cyc
}
