package cdg

import (
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
	"sr2201/internal/topo"
)

// This file supports online reconfiguration (internal/reconfig): before a
// new routing table is swapped into a live machine, the transition window —
// during which in-flight packets still route under retiring tables while new
// packets route under the committed one — is proved safe by certifying the
// union dependence graph acyclic: the new table's full CDG plus every edge a
// retiring generation's packets can still hold or wait on. EdgeSet captures
// a generation's post-contraction edges, split by traffic class so only the
// classes actually in flight contribute, and UnionCertificate runs the
// merged graph through the same topo prover as every static certificate.

// EdgeSet is one routing generation's contracted dependence edges, split by
// the traffic classes that produce them, with the channel behind every
// vertex name (the contracted broadcast tree excepted) for fault filtering.
type EdgeSet struct {
	// Scheme names the generation's policy instance (SchemeName form).
	Scheme string
	// UnicastEdges covers the point-to-point classes (RC normal and detour,
	// including detour continuations of normal routes).
	UnicastEdges [][2]string
	// BroadcastEdges covers the broadcast classes (RC broadcast-request and
	// broadcast): request-leg chains plus the edge into the contracted
	// "BROADCAST-TREE" composite.
	BroadcastEdges [][2]string
	// Nodes maps vertex names back to channels. The composite tree vertex
	// has no entry.
	Nodes map[string]Channel
}

// SnapshotEdges captures the class-split contracted dependence edges of a
// policy — the same construction RegisterDependences certifies, split into
// the unicast and broadcast builders. For a retiring generation the policy
// must be the generation's pinned reconstruction against the live fault set
// (routing.NewPinned): in-flight packets of that generation consult live
// fault bits, so e.g. a normal-class packet meeting the new fault detours
// toward the generation's own effective D-XB, and those routes must appear
// here.
func SnapshotEdges(p *routing.Policy, shape geom.Shape) (*EdgeSet, error) {
	es := &EdgeSet{Scheme: SchemeName(p, shape), Nodes: map[string]Channel{}}
	record := func(cs []Channel) {
		for _, c := range cs {
			es.Nodes[c.String()] = c
		}
	}

	bu := topo.NewBuilder()
	shape.Enumerate(func(src geom.Coord) bool {
		shape.Enumerate(func(dst geom.Coord) bool {
			path, err := p.UnicastPath(src, dst)
			if err != nil {
				if !p.PivotEnabled() {
					return true
				}
				path, err = p.PivotPath(src, dst)
				if err != nil {
					return true
				}
			}
			cs := channelsOf(path)
			record(cs)
			bu.Path(namesOf(cs)...)
			return true
		})
		return true
	})
	es.UnicastEdges = bu.ContractedEdges()

	bb := topo.NewBuilder()
	treeID := bb.Composite(treeName)
	shape.Enumerate(func(src geom.Coord) bool {
		req, tree, _, err := broadcastChannels(p, shape, src, false)
		if err != nil {
			return true // sources that cannot broadcast contribute nothing
		}
		record(req)
		record(tree)
		bb.Path(namesOf(req)...)
		if len(req) > 0 && len(tree) > 0 {
			bb.Edge(bb.Channel(req[len(req)-1].String()), treeID)
		}
		for _, c := range tree {
			bb.Absorb(treeID, bb.Channel(c.String()))
		}
		return true
	})
	es.BroadcastEdges = bb.ContractedEdges()
	return es, nil
}

// live reports whether a vertex still exists under the fault set: a faulted
// switch's channels were purged with its packets (engine.KillSwitch), so
// retiring-generation packets can no longer hold or wait on them. Unknown
// names (the composite tree, or anything unparsed) count as live — keeping
// an edge can only make the union check stricter.
func (es *EdgeSet) live(name string, faults *fault.Set) bool {
	c, ok := es.Nodes[name]
	if !ok {
		return true
	}
	if c.Router {
		return !faults.RouterFaulty(c.Coord)
	}
	return !faults.XBFaulty(c.Line)
}

// LiveEdges filters an edge group of this set down to edges whose endpoints
// both still exist under the fault set.
func (es *EdgeSet) LiveEdges(group [][2]string, faults *fault.Set) [][2]string {
	var out [][2]string
	for _, e := range group {
		if es.live(e[0], faults) && es.live(e[1], faults) {
			out = append(out, e)
		}
	}
	return out
}

// UnionCertificate certifies the transition graph for a candidate table:
// the candidate policy's full dependence graph plus every retiring edge
// still holdable by in-flight traffic (the caller assembles those from
// per-generation LiveEdges of the classes actually in flight). Old edge
// endpoints that are broadcast-tree members of the candidate's graph are
// contracted onto its composite, so a retiring route waiting into the new
// tree meets the new tree's own dependences — exactly the interaction the
// transition must prove harmless.
func UnionCertificate(candidate *routing.Policy, shape geom.Shape, retiring [][2]string, scheme string) (topo.Certificate, error) {
	b := topo.NewBuilder()
	if err := RegisterDependences(b, candidate, shape); err != nil {
		return topo.Certificate{}, err
	}
	for _, e := range retiring {
		b.Edge(b.Channel(e[0]), b.Channel(e[1]))
	}
	return b.Certificate(scheme), nil
}
