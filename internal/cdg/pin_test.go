package cdg_test

// Pins the refactor of Analyze onto the topo prover: every number below
// was captured from the pre-refactor analyzer (this repo at PR 6), so the
// topology-agnostic Builder provably reproduces the historical Section 5
// results byte for byte — channel counts, edge counts, verdicts, and the
// exact cycle witnesses. The second test closes the loop the other way:
// the topo/mdx reference scheme certified through topo.Certify must agree
// with cdg.Analyze exactly.

import (
	"fmt"
	"reflect"
	"testing"

	"sr2201/internal/cdg"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
	"sr2201/internal/topo"
	"sr2201/internal/topo/mdx"
)

type pinCase struct {
	name     string
	shape    geom.Shape
	cfg      routing.Config
	naive    bool
	channels int
	edges    int
	acyclic  bool
	hazard   bool
	shared   int
	cycle    []string
}

func pinCases(t *testing.T) []pinCase {
	t.Helper()
	sh44 := geom.MustShape(4, 4)
	fig9 := fault.NewSet(sh44)
	if err := fig9.Add(fault.RouterFault(geom.Coord{2, 1})); err != nil {
		t.Fatal(err)
	}
	pivotFault := fault.NewSet(sh44)
	if err := pivotFault.Add(fault.XBFault(geom.Line{Dim: 1, Fixed: geom.Coord{2, 0}})); err != nil {
		t.Fatal(err)
	}
	cases := []pinCase{
		{name: "unified-3x3", shape: geom.MustShape(3, 3), cfg: routing.Config{Shape: geom.MustShape(3, 3)},
			channels: 25, edges: 45, acyclic: true},
		{name: "unified-4x3", shape: geom.MustShape(4, 3), cfg: routing.Config{Shape: geom.MustShape(4, 3)},
			channels: 33, edges: 68, acyclic: true},
		{name: "unified-4x4", shape: sh44, cfg: routing.Config{Shape: sh44},
			channels: 45, edges: 96, acyclic: true},
		{name: "unified-3x3x2", shape: geom.MustShape(3, 3, 2), cfg: routing.Config{Shape: geom.MustShape(3, 3, 2)},
			channels: 79, edges: 147, acyclic: true},
		{name: "unified-6", shape: geom.MustShape(6), cfg: routing.Config{Shape: geom.MustShape(6)},
			channels: 7, edges: 6, acyclic: true},
		{name: "sep-dxb-fig9", shape: sh44,
			cfg:      routing.Config{Shape: sh44, Faults: fig9, SXB: geom.Coord{0, 0}, DXB: geom.Coord{0, 3}},
			channels: 43, edges: 89, acyclic: false,
			cycle: []string{"RTC(0,3).out0", "XB0(0,3).out2", "RTC(2,3).out1", "XB1(2,0).out0", "RTC(2,0).out0", "BROADCAST-TREE"}},
		{name: "sep-dxb-nofault", shape: sh44,
			cfg:      routing.Config{Shape: sh44, SXB: geom.Coord{0, 0}, DXB: geom.Coord{0, 3}},
			channels: 45, edges: 96, acyclic: true},
		{name: "naive-4x3", shape: geom.MustShape(4, 3),
			cfg:   routing.Config{Shape: geom.MustShape(4, 3), NaiveBroadcast: true},
			naive: true, channels: 60, edges: 96, acyclic: false, hazard: true, shared: 26},
		{name: "naive-5", shape: geom.MustShape(5),
			cfg:   routing.Config{Shape: geom.MustShape(5), NaiveBroadcast: true},
			naive: true, channels: 15, edges: 25, acyclic: false, hazard: true, shared: 8},
		{name: "pivot-xbfault", shape: sh44,
			cfg:      routing.Config{Shape: sh44, Faults: pivotFault, PivotLastDim: true},
			channels: 44, edges: 88, acyclic: false,
			cycle: []string{"RTC(0,1).out0", "XB0(0,1).out1", "RTC(1,1).out1", "XB1(1,0).out0", "RTC(1,0).out0", "BROADCAST-TREE"}},
	}
	// Every single-router-fault placement on 4x3 lands on the same counts:
	// the substitution rule keeps the degraded graph isomorphic.
	sh43 := geom.MustShape(4, 3)
	sh43.Enumerate(func(c geom.Coord) bool {
		fs := fault.NewSet(sh43)
		if err := fs.Add(fault.RouterFault(c)); err != nil {
			t.Fatal(err)
		}
		cases = append(cases, pinCase{
			name: fmt.Sprintf("unified-4x3-rtc%v", c), shape: sh43,
			cfg:      routing.Config{Shape: sh43, Faults: fs},
			channels: 31, edges: 59, acyclic: true,
		})
		return true
	})
	return cases
}

// TestAnalyzePinnedToPreTopoOutput locks Analyze, now driven through the
// topo Builder, to the output of the historical cdg-internal builder.
func TestAnalyzePinnedToPreTopoOutput(t *testing.T) {
	for _, tc := range pinCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p, err := routing.New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			r, err := cdg.Analyze(p, tc.shape, tc.naive)
			if err != nil {
				t.Fatal(err)
			}
			if r.Channels != tc.channels || r.Edges != tc.edges || r.Acyclic != tc.acyclic ||
				r.NaiveHazard != tc.hazard || r.SharedFanChannels != tc.shared {
				t.Errorf("got channels=%d edges=%d acyclic=%v hazard=%v shared=%d, pinned channels=%d edges=%d acyclic=%v hazard=%v shared=%d",
					r.Channels, r.Edges, r.Acyclic, r.NaiveHazard, r.SharedFanChannels,
					tc.channels, tc.edges, tc.acyclic, tc.hazard, tc.shared)
			}
			if len(tc.cycle) > 0 && !reflect.DeepEqual(r.Cycle, tc.cycle) {
				t.Errorf("cycle witness diverged:\n got %v\npinned %v", r.Cycle, tc.cycle)
			}
		})
	}
}

// TestMdxSchemeCertificateMatchesAnalyze drives the same configurations
// through the topo/mdx reference scheme and requires topo.Certify to
// agree with cdg.Analyze exactly (the naive analysis is cdg-only: the
// contraction is unsound without serialization, so the scheme does not
// model it).
func TestMdxSchemeCertificateMatchesAnalyze(t *testing.T) {
	for _, tc := range pinCases(t) {
		if tc.naive {
			continue
		}
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s, err := mdx.New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			cert, err := topo.Certify(s)
			if err != nil {
				t.Fatal(err)
			}
			r, err := cdg.Analyze(s.Policy(), tc.shape, false)
			if err != nil {
				t.Fatal(err)
			}
			if cert.Channels != r.Channels || cert.Edges != r.Edges || cert.Acyclic != r.Acyclic ||
				!reflect.DeepEqual(cert.Cycle, r.Cycle) {
				t.Errorf("certificate %+v != analyze %+v", cert, r)
			}
		})
	}
}
