package cdg

import (
	"strings"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
)

func policy(t *testing.T, cfg routing.Config) *routing.Policy {
	t.Helper()
	p, err := routing.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func faults(t *testing.T, shape geom.Shape, fs ...fault.Fault) *fault.Set {
	t.Helper()
	set := fault.NewSet(shape)
	for _, f := range fs {
		if err := set.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	return set
}

// The fault-free unified scheme must have an acyclic dependency graph on a
// spread of shapes — the static form of the paper's Section 5 theorem.
func TestUnifiedSchemeAcyclicFaultFree(t *testing.T) {
	for _, extents := range [][]int{{3, 3}, {4, 3}, {4, 4}, {3, 3, 2}, {6}} {
		shape := geom.MustShape(extents...)
		p := policy(t, routing.Config{Shape: shape})
		res, err := Analyze(p, shape, false)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if !res.Acyclic {
			t.Errorf("%v: CDG cyclic: %v", shape, res.Cycle)
		}
		if res.Channels == 0 || res.Edges == 0 {
			t.Errorf("%v: degenerate graph %+v", shape, res)
		}
	}
}

// The theorem must hold under every single router fault and every dim-0
// crossbar fault: the detour and broadcast still serialize at one crossbar.
func TestUnifiedSchemeAcyclicUnderSingleFaults(t *testing.T) {
	shape := geom.MustShape(4, 3)
	var all []fault.Fault
	shape.Enumerate(func(c geom.Coord) bool {
		all = append(all, fault.RouterFault(c))
		return true
	})
	for _, l := range shape.Lines() {
		all = append(all, fault.XBFault(l))
	}
	for _, f := range all {
		p := policy(t, routing.Config{Shape: shape, Faults: faults(t, shape, f)})
		res, err := Analyze(p, shape, false)
		if err != nil {
			t.Fatalf("fault %v: %v", f, err)
		}
		if !res.Acyclic {
			t.Errorf("fault %v: CDG cyclic: %v", f, res.Cycle)
		}
	}
}

// The Fig. 9 configuration (separate D-XB) must produce a dependency cycle
// through the broadcast tree.
func TestSeparateDXBCyclic(t *testing.T) {
	shape := geom.MustShape(4, 4)
	p := policy(t, routing.Config{
		Shape:  shape,
		SXB:    geom.Coord{0, 0},
		DXB:    geom.Coord{0, 3},
		Faults: faults(t, shape, fault.RouterFault(geom.Coord{2, 1})),
	})
	res, err := Analyze(p, shape, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acyclic {
		t.Fatal("separate-D-XB CDG reported acyclic; Fig. 9 contradicts this")
	}
	// The cycle must pass through the contracted broadcast tree.
	joined := strings.Join(res.Cycle, " ")
	if !strings.Contains(joined, "BROADCAST-TREE") {
		t.Errorf("cycle does not involve the broadcast tree: %v", res.Cycle)
	}
}

// Without any fault the separate D-XB is never exercised (no detours), so
// the graph stays acyclic: Fig. 9 needs the fault.
func TestSeparateDXBAcyclicWithoutFault(t *testing.T) {
	shape := geom.MustShape(4, 4)
	p := policy(t, routing.Config{Shape: shape, SXB: geom.Coord{0, 0}, DXB: geom.Coord{0, 3}})
	res, err := Analyze(p, shape, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Acyclic {
		t.Errorf("fault-free separate-D-XB cyclic: %v", res.Cycle)
	}
}

// Naive (unserialized) broadcast must be flagged as a Fig. 5 hazard.
func TestNaiveBroadcastHazard(t *testing.T) {
	shape := geom.MustShape(4, 3)
	p := policy(t, routing.Config{Shape: shape, NaiveBroadcast: true})
	res, err := Analyze(p, shape, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NaiveHazard {
		t.Fatal("naive broadcast hazard not detected")
	}
	if res.SharedFanChannels < 2 {
		t.Errorf("shared fan channels = %d", res.SharedFanChannels)
	}
	if res.Acyclic {
		t.Error("hazardous configuration reported acyclic")
	}
}

// A 1-PE-wide network has no fan overlap and no hazard.
func TestNaiveSingleLineNoHazard(t *testing.T) {
	shape := geom.MustShape(5)
	p := policy(t, routing.Config{Shape: shape, NaiveBroadcast: true})
	res, err := Analyze(p, shape, true)
	if err != nil {
		t.Fatal(err)
	}
	// On a single crossbar two naive fans share the whole crossbar's output
	// set — still a hazard; verify the analyzer sees the overlap.
	if !res.NaiveHazard {
		t.Error("single-crossbar naive fans should still overlap")
	}
}

func TestChannelString(t *testing.T) {
	c := Channel{Router: true, Coord: geom.Coord{1, 2}, Out: 0}
	if got := c.String(); got != "RTC(1,2).out0" {
		t.Errorf("router channel = %q", got)
	}
	x := Channel{Line: geom.Line{Dim: 1, Fixed: geom.Coord{3, 0}}, Out: 2}
	if got := x.String(); got != "XB1(3,0).out2" {
		t.Errorf("crossbar channel = %q", got)
	}
}

// The dynamic simulator and the static analyzer must agree on the headline
// verdicts. (Dynamic evidence lives in internal/core's figure tests; here we
// assert the static side matches the same configurations.)
func TestStaticDynamicAgreement(t *testing.T) {
	shape := geom.MustShape(4, 4)
	fs := faults(t, shape, fault.RouterFault(geom.Coord{2, 1}))

	unified := policy(t, routing.Config{Shape: shape, SXB: geom.Coord{0, 0}, DXB: geom.Coord{0, 0}, Faults: fs})
	resU, err := Analyze(unified, shape, false)
	if err != nil {
		t.Fatal(err)
	}
	separate := policy(t, routing.Config{Shape: shape, SXB: geom.Coord{0, 0}, DXB: geom.Coord{0, 3}, Faults: fs})
	resS, err := Analyze(separate, shape, false)
	if err != nil {
		t.Fatal(err)
	}
	if !resU.Acyclic || resS.Acyclic {
		t.Errorf("unified acyclic=%v separate acyclic=%v; want true,false", resU.Acyclic, resS.Acyclic)
	}
}

// The pivot extension restores reachability but breaks the acyclicity
// guarantee: its second dim-0 leg is a Y->X turn away from the S-XB, and
// the channel RTC.out0 it waits on is shared with ordinary source traffic
// heading to healthy columns — closing multi-packet cycles. This is the
// static form of why the paper confines non-dimension-order turns to the
// serialized crossbar.
func TestPivotExtensionBreaksAcyclicity(t *testing.T) {
	shape := geom.MustShape(4, 4)
	f := fault.XBFault(geom.Line{Dim: 1, Fixed: geom.Coord{2, 0}})

	// Base facility under the same fault: acyclic (it simply refuses the
	// cut-off destinations).
	base := policy(t, routing.Config{Shape: shape, Faults: faults(t, shape, f)})
	resBase, err := Analyze(base, shape, false)
	if err != nil {
		t.Fatal(err)
	}
	if !resBase.Acyclic {
		t.Fatalf("base facility cyclic under %v: %v", f, resBase.Cycle)
	}

	// With the pivot: cyclic.
	piv := policy(t, routing.Config{Shape: shape, PivotLastDim: true, Faults: faults(t, shape, f)})
	resPiv, err := Analyze(piv, shape, false)
	if err != nil {
		t.Fatal(err)
	}
	if resPiv.Acyclic {
		t.Fatal("pivot-extended CDG unexpectedly acyclic")
	}
	if len(resPiv.Cycle) < 3 {
		t.Errorf("cycle suspiciously short: %v", resPiv.Cycle)
	}
}
