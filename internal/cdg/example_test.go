package cdg_test

import (
	"fmt"

	"sr2201/internal/cdg"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/routing"
)

// ExampleAnalyze checks the paper's Section 5 theorem statically: the
// unified D-XB = S-XB scheme has an acyclic channel dependency graph; the
// Fig. 9 configuration (separate D-XB, one faulty router) does not.
func ExampleAnalyze() {
	shape := geom.MustShape(4, 4)
	faults := fault.NewSet(shape)
	_ = faults.Add(fault.RouterFault(geom.Coord{2, 1}))

	unified, _ := routing.New(routing.Config{Shape: shape, Faults: faults})
	resU, _ := cdg.Analyze(unified, shape, false)

	separate, _ := routing.New(routing.Config{
		Shape: shape, SXB: geom.Coord{0, 0}, DXB: geom.Coord{0, 3}, Faults: faults,
	})
	resS, _ := cdg.Analyze(separate, shape, false)

	fmt.Println("D-XB = S-XB acyclic:", resU.Acyclic)
	fmt.Println("D-XB != S-XB acyclic:", resS.Acyclic)
	// Output:
	// D-XB = S-XB acyclic: true
	// D-XB != S-XB acyclic: false
}
