package fault

import (
	"fmt"

	"sr2201/internal/checkpoint"
	"sr2201/internal/geom"
)

// EncodeFault appends one fault record. Field order is part of the
// checkpoint v1 format (see the version-bump rule in package checkpoint).
// KindLink appends its second endpoint after the common fields, so
// streams written before links existed decode unchanged.
func EncodeFault(e *checkpoint.Encoder, f Fault) {
	e.Byte(byte(f.Kind))
	geom.EncodeCoord(e, f.Coord)
	geom.EncodeLine(e, f.Line)
	if f.Kind == KindLink {
		geom.EncodeCoord(e, f.To)
	}
}

// DecodeFault reads a fault record, rejecting unknown kinds.
func DecodeFault(d *checkpoint.Decoder) Fault {
	var f Fault
	f.Kind = Kind(d.Byte())
	f.Coord = geom.DecodeCoord(d)
	f.Line = geom.DecodeLine(d)
	if d.Err() == nil && f.Kind > KindLink {
		d.Fail(fmt.Sprintf("unknown fault kind %d", f.Kind))
		return f
	}
	if f.Kind == KindLink {
		f.To = geom.DecodeCoord(d)
	}
	return f
}
