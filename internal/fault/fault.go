// Package fault models network faults and the SR2201's distributed fault
// information. Following the paper's Section 4, when a switch is faulty "the
// information of the switches to which it is connected is set in advance" on
// its neighbors: routers hold a few bits about the crossbars they attach to,
// and crossbars hold a few bits about the routers they attach to. The
// routing policies consult only this neighbor-local information, never a
// global fault map, mirroring the hardware's minimal-cost design.
package fault

import (
	"fmt"

	"sr2201/internal/geom"
)

// Kind classifies a faulty switch.
type Kind uint8

const (
	// KindRouter marks a faulty relay switch (RTC). Its PE is cut off.
	KindRouter Kind = iota
	// KindXB marks a faulty crossbar switch.
	KindXB
	// KindLink marks a faulty direct link between two routers of one
	// axis-aligned line (the direct-link topologies in internal/topo: the
	// MD crossbar has no such links). A link is undirected: both
	// directions fail together.
	KindLink
)

// Fault identifies one faulty switch or link.
type Fault struct {
	Kind Kind
	// Coord locates a faulty router (KindRouter) or one endpoint of a
	// faulty link (KindLink).
	Coord geom.Coord
	// Line locates a faulty crossbar (KindXB).
	Line geom.Line
	// To is the other endpoint of a faulty link (KindLink). It must
	// differ from Coord in exactly one dimension.
	To geom.Coord
}

// RouterFault returns a Fault marking the router at c.
func RouterFault(c geom.Coord) Fault { return Fault{Kind: KindRouter, Coord: c} }

// XBFault returns a Fault marking the crossbar of line l.
func XBFault(l geom.Line) Fault { return Fault{Kind: KindXB, Line: l} }

// LinkFault returns a Fault marking the undirected direct link between a
// and b. The endpoints are stored in canonical (lexicographic) order, so
// LinkFault(a, b) and LinkFault(b, a) are the same fault.
func LinkFault(a, b geom.Coord) Fault {
	if linkLess(b, a) {
		a, b = b, a
	}
	return Fault{Kind: KindLink, Coord: a, To: b}
}

// linkLess orders coordinates lexicographically for canonical link
// endpoints.
func linkLess(a, b geom.Coord) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// String renders the fault.
func (f Fault) String() string {
	switch f.Kind {
	case KindRouter:
		return "router@" + f.Coord.String()
	case KindLink:
		return "link@" + f.Coord.String() + "-" + f.To.String()
	}
	return "xb@" + f.Line.String()
}

// Set is the collection of faults present in the network, with the
// neighbor-information queries the routing hardware would answer from its
// pre-set bits. The zero value is not usable — it has no shape — and every
// shape-dependent method panics on it with a clear message; call NewSet.
// (The pure membership queries RouterFaulty/XBFaulty tolerate the zero
// value and answer "healthy", since an empty set is semantically faultless
// and they sit on the routing hot path.)
type Set struct {
	shape   geom.Shape
	routers map[geom.Coord]bool
	xbs     map[geom.Line]bool
	links   map[[2]geom.Coord]bool
	list    []Fault
}

// ensure panics when the set is the unusable zero value.
func (s *Set) ensure() {
	if s.shape.Dims() == 0 {
		panic("fault: zero-value Set is not usable; call NewSet(shape)")
	}
}

// NewSet creates an empty fault set for a network of the given shape.
func NewSet(shape geom.Shape) *Set {
	return &Set{
		shape:   shape,
		routers: map[geom.Coord]bool{},
		xbs:     map[geom.Line]bool{},
		links:   map[[2]geom.Coord]bool{},
	}
}

// Add marks a switch faulty. It validates that the fault lies inside the
// network. The paper's facility is specified for a single faulty point;
// callers may add more, but the routing guarantees then no longer hold.
func (s *Set) Add(f Fault) error {
	s.ensure()
	switch f.Kind {
	case KindRouter:
		if !s.shape.Contains(f.Coord) {
			return fmt.Errorf("fault: router %v outside shape", f.Coord)
		}
		s.routers[f.Coord] = true
	case KindXB:
		if f.Line.Dim < 0 || f.Line.Dim >= s.shape.Dims() {
			return fmt.Errorf("fault: crossbar dimension %d outside shape", f.Line.Dim)
		}
		if !s.shape.Contains(f.Line.Point(0)) {
			return fmt.Errorf("fault: crossbar %v outside shape", f.Line)
		}
		s.xbs[f.Line] = true
	case KindLink:
		if !s.shape.Contains(f.Coord) {
			return fmt.Errorf("fault: link endpoint %v outside shape", f.Coord)
		}
		if !s.shape.Contains(f.To) {
			return fmt.Errorf("fault: link endpoint %v outside shape", f.To)
		}
		if f.Coord.Distance(f.To) != 1 {
			return fmt.Errorf("fault: link %v-%v endpoints must differ in exactly one dimension", f.Coord, f.To)
		}
		s.links[linkKey(f.Coord, f.To)] = true
	default:
		return fmt.Errorf("fault: unknown kind %d", f.Kind)
	}
	s.list = append(s.list, f)
	return nil
}

// Count reports the number of faults.
func (s *Set) Count() int { return len(s.list) }

// List returns the faults in insertion order.
func (s *Set) List() []Fault { return append([]Fault(nil), s.list...) }

// RouterFaulty reports whether the router at c is faulty. Policies must call
// this only for routers adjacent to the querying switch (the neighbor-bits
// discipline).
func (s *Set) RouterFaulty(c geom.Coord) bool { return s.routers[c] }

// XBFaulty reports whether the crossbar of line l is faulty. Same adjacency
// discipline as RouterFaulty.
func (s *Set) XBFaulty(l geom.Line) bool { return s.xbs[l] }

// LinkFaulty reports whether the direct link between a and b is faulty,
// in either argument order. Like RouterFaulty/XBFaulty it tolerates the
// zero-value set (answering "healthy") because it sits on the routing hot
// path of the direct-link schemes.
func (s *Set) LinkFaulty(a, b geom.Coord) bool { return s.links[linkKey(a, b)] }

// linkKey canonicalizes an undirected link's endpoints.
func linkKey(a, b geom.Coord) [2]geom.Coord {
	if linkLess(b, a) {
		a, b = b, a
	}
	return [2]geom.Coord{a, b}
}

// LineTouched reports whether the line's crossbar is faulty or any router on
// the line is faulty. The S-XB substitution rule uses it: "if the XB
// connected to the S-XB is faulty, another XB ... substitutes for the S-XB".
func (s *Set) LineTouched(l geom.Line) bool {
	s.ensure()
	if s.xbs[l] {
		return true
	}
	for v := 0; v < s.shape[l.Dim]; v++ {
		if s.routers[l.Point(v)] {
			return true
		}
	}
	return false
}

// PEAlive reports whether the PE at c can use the network at all: its relay
// switch must be healthy.
func (s *Set) PEAlive(c geom.Coord) bool { return !s.routers[c] }

// DetourPort returns the statically designated detour router port for the
// dim-0 crossbar of line l: the lowest port whose router is healthy. This is
// the paper's "specific RTC (the detour RTC) ... determined by the network
// hardware in advance". The second result is false when every router on the
// line is faulty (impossible under the single-fault assumption on lines of
// length ≥ 2).
func (s *Set) DetourPort(l geom.Line) (int, bool) {
	s.ensure()
	for v := 0; v < s.shape[l.Dim]; v++ {
		if !s.routers[l.Point(v)] {
			return v, true
		}
	}
	return 0, false
}

// Shape returns the lattice shape the set was built for.
func (s *Set) Shape() geom.Shape { return s.shape }

// Clone returns an independent deep copy of the set: mutations of the clone
// (or the original) are invisible to the other. Campaign workers use clones
// to probe hypothetical fault placements without sharing state across
// goroutines.
func (s *Set) Clone() *Set {
	s.ensure()
	c := NewSet(s.shape)
	for k, v := range s.routers {
		c.routers[k] = v
	}
	for k, v := range s.xbs {
		c.xbs[k] = v
	}
	for k, v := range s.links {
		c.links[k] = v
	}
	c.list = append(c.list, s.list...)
	return c
}
