package fault

import (
	"testing"

	"sr2201/internal/geom"
)

func shape43() geom.Shape { return geom.MustShape(4, 3) }

func TestAddValidation(t *testing.T) {
	s := NewSet(shape43())
	if err := s.Add(RouterFault(geom.Coord{1, 1})); err != nil {
		t.Fatalf("valid router fault rejected: %v", err)
	}
	if err := s.Add(RouterFault(geom.Coord{4, 0})); err == nil {
		t.Error("out-of-range router fault accepted")
	}
	if err := s.Add(XBFault(geom.Line{Dim: 0, Fixed: geom.Coord{0, 2}})); err != nil {
		t.Fatalf("valid crossbar fault rejected: %v", err)
	}
	if err := s.Add(XBFault(geom.Line{Dim: 2, Fixed: geom.Coord{}})); err == nil {
		t.Error("out-of-dims crossbar fault accepted")
	}
	if err := s.Add(XBFault(geom.Line{Dim: 0, Fixed: geom.Coord{0, 5}})); err == nil {
		t.Error("out-of-range crossbar fault accepted")
	}
	if err := s.Add(Fault{Kind: Kind(9)}); err == nil {
		t.Error("unknown fault kind accepted")
	}
	if s.Count() != 2 {
		t.Errorf("count = %d, want 2", s.Count())
	}
	if got := len(s.List()); got != 2 {
		t.Errorf("list = %d entries", got)
	}
}

func TestQueries(t *testing.T) {
	s := NewSet(shape43())
	r := geom.Coord{2, 1}
	if err := s.Add(RouterFault(r)); err != nil {
		t.Fatal(err)
	}
	if !s.RouterFaulty(r) || s.RouterFaulty(geom.Coord{0, 0}) {
		t.Error("RouterFaulty wrong")
	}
	if s.PEAlive(r) || !s.PEAlive(geom.Coord{0, 0}) {
		t.Error("PEAlive wrong")
	}
	xl := geom.Line{Dim: 1, Fixed: geom.Coord{3, 0}}
	if err := s.Add(XBFault(xl)); err != nil {
		t.Fatal(err)
	}
	if !s.XBFaulty(xl) || s.XBFaulty(geom.Line{Dim: 1, Fixed: geom.Coord{0, 0}}) {
		t.Error("XBFaulty wrong")
	}
}

func TestLineTouched(t *testing.T) {
	s := NewSet(shape43())
	if err := s.Add(RouterFault(geom.Coord{2, 1})); err != nil {
		t.Fatal(err)
	}
	// The dim-0 line through (2,1) is touched; the dim-0 line at row 0 isn't.
	if !s.LineTouched(geom.LineOf(geom.Coord{2, 1}, 0)) {
		t.Error("row 1 not touched")
	}
	if s.LineTouched(geom.LineOf(geom.Coord{0, 0}, 0)) {
		t.Error("row 0 touched")
	}
	// The dim-1 line through (2,1) is also touched.
	if !s.LineTouched(geom.LineOf(geom.Coord{2, 1}, 1)) {
		t.Error("column 2 not touched")
	}
	// A directly faulty crossbar touches its own line.
	if err := s.Add(XBFault(geom.LineOf(geom.Coord{0, 2}, 0))); err != nil {
		t.Fatal(err)
	}
	if !s.LineTouched(geom.LineOf(geom.Coord{3, 2}, 0)) {
		t.Error("faulted crossbar's line not touched")
	}
}

func TestDetourPort(t *testing.T) {
	s := NewSet(shape43())
	l := geom.LineOf(geom.Coord{0, 1}, 0)
	if p, ok := s.DetourPort(l); !ok || p != 0 {
		t.Errorf("no-fault detour = %d,%v", p, ok)
	}
	if err := s.Add(RouterFault(geom.Coord{0, 1})); err != nil {
		t.Fatal(err)
	}
	if p, ok := s.DetourPort(l); !ok || p != 1 {
		t.Errorf("detour with port-0 router down = %d,%v", p, ok)
	}
	// Kill every router on the line: no detour port remains.
	for v := 1; v < 4; v++ {
		if err := s.Add(RouterFault(geom.Coord{v, 1})); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.DetourPort(l); ok {
		t.Error("detour port found on a fully dead line")
	}
}

func TestZeroValueSetFailsLoudly(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on zero-value Set did not panic", name)
			}
		}()
		fn()
	}
	var s Set
	mustPanic("Add", func() { _ = s.Add(RouterFault(geom.Coord{0, 0})) })
	mustPanic("LineTouched", func() { s.LineTouched(geom.Line{}) })
	mustPanic("DetourPort", func() { s.DetourPort(geom.Line{}) })
	mustPanic("Clone", func() { s.Clone() })
	// Pure membership queries stay usable: an empty set is faultless.
	if s.RouterFaulty(geom.Coord{1, 1}) || s.XBFaulty(geom.Line{}) || !s.PEAlive(geom.Coord{0, 0}) {
		t.Error("zero-value membership queries reported faults")
	}
}

func TestClone(t *testing.T) {
	s := NewSet(shape43())
	if err := s.Add(RouterFault(geom.Coord{1, 1})); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if !c.RouterFaulty(geom.Coord{1, 1}) || c.Count() != 1 || c.Shape().String() != s.Shape().String() {
		t.Fatal("clone did not copy contents")
	}
	// Mutating the clone must not leak into the original, and vice versa.
	if err := c.Add(XBFault(geom.LineOf(geom.Coord{0, 2}, 0))); err != nil {
		t.Fatal(err)
	}
	if s.XBFaulty(geom.LineOf(geom.Coord{0, 2}, 0)) || s.Count() != 1 {
		t.Error("clone mutation leaked into original")
	}
	if err := s.Add(RouterFault(geom.Coord{3, 2})); err != nil {
		t.Fatal(err)
	}
	if c.RouterFaulty(geom.Coord{3, 2}) || c.Count() != 2 {
		t.Error("original mutation leaked into clone")
	}
}

func TestFaultString(t *testing.T) {
	if got := RouterFault(geom.Coord{1, 2}).String(); got != "router@(1,2)" {
		t.Errorf("String = %q", got)
	}
	if got := XBFault(geom.Line{Dim: 1, Fixed: geom.Coord{3, 0}}).String(); got != "xb@dim1@(3,0)" {
		t.Errorf("String = %q", got)
	}
}
