package stats

import (
	"sort"
	"strconv"

	"sr2201/internal/engine"
)

// PortUtil reports one switch output channel's utilization.
type PortUtil struct {
	// Node and Port identify the channel.
	Node string
	Port int
	// Busy is the number of cycles a flit crossed the channel; Conflicts is
	// the number of allocation cycles with competing requests.
	Busy, Conflicts int64
	// Frac is Busy divided by the elapsed cycles.
	Frac float64
}

// TopPorts returns the n busiest switch output channels of a simulation,
// utilization computed over the engine's elapsed cycles. Endpoints
// (injection channels) are excluded — they reflect offered load, not
// network contention.
func TopPorts(e *engine.Engine, n int) []PortUtil {
	elapsed := e.Cycle()
	var out []PortUtil
	for _, sw := range e.Switches() {
		for i, op := range sw.Out {
			if op.BusyCycles == 0 && op.ConflictCycles == 0 {
				continue
			}
			u := PortUtil{Node: sw.Name, Port: i, Busy: op.BusyCycles, Conflicts: op.ConflictCycles}
			if elapsed > 0 {
				u.Frac = float64(op.BusyCycles) / float64(elapsed)
			}
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Busy != out[j].Busy {
			return out[i].Busy > out[j].Busy
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Port < out[j].Port
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// UtilizationTable renders the busiest channels as a result table.
func UtilizationTable(e *engine.Engine, n int) *Table {
	t := NewTable("Busiest network channels", "channel", "busy cycles", "utilization", "conflicts")
	for _, u := range TopPorts(e, n) {
		t.AddRow(u.Node+".out"+strconv.Itoa(u.Port), u.Busy, u.Frac, u.Conflicts)
	}
	return t
}
