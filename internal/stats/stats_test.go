package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLatencyBasics(t *testing.T) {
	var l Latency
	if l.Count() != 0 || l.Mean() != 0 || l.Percentile(50) != 0 {
		t.Error("zero-value Latency not empty")
	}
	if l.String() != "n=0" {
		t.Errorf("empty String = %q", l.String())
	}
	for _, v := range []int64{10, 20, 30, 40} {
		l.Add(v)
	}
	if l.Count() != 4 || l.Min() != 10 || l.Max() != 40 {
		t.Errorf("count/min/max = %d/%d/%d", l.Count(), l.Min(), l.Max())
	}
	if l.Mean() != 25 {
		t.Errorf("mean = %v", l.Mean())
	}
	if got := l.Percentile(50); got != 20 {
		t.Errorf("p50 = %d", got)
	}
	if got := l.Percentile(100); got != 40 {
		t.Errorf("p100 = %d", got)
	}
	if got := l.Percentile(1); got != 10 {
		t.Errorf("p1 = %d", got)
	}
	// Adding after a percentile query must keep the structure consistent.
	l.Add(5)
	if l.Min() != 5 || l.Percentile(1) != 5 {
		t.Errorf("after re-add: min=%d p1=%d", l.Min(), l.Percentile(1))
	}
	if !strings.Contains(l.String(), "n=5") {
		t.Errorf("String = %q", l.String())
	}
}

func TestQuickPercentileBounds(t *testing.T) {
	f := func(raw []int16) bool {
		var l Latency
		for _, v := range raw {
			l.Add(int64(v))
		}
		if len(raw) == 0 {
			return l.Percentile(50) == 0
		}
		p50 := l.Percentile(50)
		return p50 >= l.Min() && p50 <= l.Max() && l.Percentile(1) == l.Min() && l.Percentile(100) == l.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(50, 100); got != 0.5 {
		t.Errorf("throughput = %v", got)
	}
	if got := Throughput(50, 0); got != 0 {
		t.Errorf("zero-cycle throughput = %v", got)
	}
}

func TestTableFormat(t *testing.T) {
	tb := NewTable("Results", "load", "latency", "ok")
	tb.AddRow(0.1, int64(42), true)
	tb.AddRow(0.25, int64(7), false)
	if tb.Rows() != 2 {
		t.Errorf("rows = %d", tb.Rows())
	}
	s := tb.String()
	for _, want := range []string{"Results", "load", "latency", "0.100", "42", "true", "false", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	// Columns aligned: header row and data rows have consistent prefixes.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
}

func TestCellFormats(t *testing.T) {
	if got := Cell(1.5); got != "1.500" {
		t.Errorf("float cell = %q", got)
	}
	if got := Cell(float32(2)); got != "2.000" {
		t.Errorf("float32 cell = %q", got)
	}
	if got := Cell("x"); got != "x" {
		t.Errorf("string cell = %q", got)
	}
	if got := Cell(7); got != "7" {
		t.Errorf("int cell = %q", got)
	}
}
