package stats

import (
	"fmt"
	"testing"
)

// TestPercentileEdgeCases pins the nearest-rank definition at its corners:
// empty distributions, single samples, boundary percentiles, tie plateaus,
// duplicate-heavy sets, and out-of-range p.
func TestPercentileEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		samples []int64
		p       float64
		want    int64
	}{
		{"empty p50", nil, 50, 0},
		{"empty p100", nil, 100, 0},
		{"single p1", []int64{7}, 1, 7},
		{"single p50", []int64{7}, 50, 7},
		{"single p100", []int64{7}, 100, 7},
		// Nearest-rank on n=4: rank = ceil(p/100*4).
		{"quartet p25 is rank 1", []int64{10, 20, 30, 40}, 25, 10},
		{"quartet p26 crosses to rank 2", []int64{10, 20, 30, 40}, 26, 20},
		{"quartet p50 is rank 2", []int64{10, 20, 30, 40}, 50, 20},
		{"quartet p51 crosses to rank 3", []int64{10, 20, 30, 40}, 51, 30},
		{"quartet p75 is rank 3", []int64{10, 20, 30, 40}, 75, 30},
		{"quartet p100 is max", []int64{10, 20, 30, 40}, 100, 40},
		// Unsorted input: Percentile sorts internally.
		{"unsorted", []int64{40, 10, 30, 20}, 50, 20},
		// Tie plateau: ranks 2..4 share one value.
		{"ties p50", []int64{1, 5, 5, 5, 9}, 50, 5},
		{"ties p20 is min", []int64{1, 5, 5, 5, 9}, 20, 1},
		{"ties p81 crosses to max", []int64{1, 5, 5, 5, 9}, 81, 9},
		{"all equal", []int64{3, 3, 3}, 95, 3},
		// Degenerate p clamps to the nearest valid rank.
		{"p0 clamps to min", []int64{10, 20, 30}, 0, 10},
		{"negative p clamps to min", []int64{10, 20, 30}, -5, 10},
		{"p beyond 100 clamps to max", []int64{10, 20, 30}, 150, 30},
		// Negative samples sort below zero.
		{"negative samples", []int64{-30, -10, -20}, 50, -20},
		{"mixed signs p100", []int64{-5, 0, 5}, 100, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var l Latency
			for _, v := range tc.samples {
				l.Add(v)
			}
			if got := l.Percentile(tc.p); got != tc.want {
				t.Errorf("Percentile(%v) of %v = %d, want %d", tc.p, tc.samples, got, tc.want)
			}
		})
	}
}

// TestPercentileInterleavedAdds verifies the sort cache invalidates across
// interleaved Add/Percentile calls.
func TestPercentileInterleavedAdds(t *testing.T) {
	var l Latency
	l.Add(100)
	if got := l.Percentile(50); got != 100 {
		t.Fatalf("p50 = %d", got)
	}
	l.Add(1) // must invalidate the sorted cache
	if got := l.Percentile(50); got != 1 {
		t.Errorf("p50 after low add = %d, want 1", got)
	}
	l.Add(50)
	if got, want := l.Percentile(100), int64(100); got != want {
		t.Errorf("p100 = %d, want %d", got, want)
	}
}

// ExampleLatency_Percentile documents the nearest-rank convention the
// reports (and the jobs layer's duration metrics) rely on.
func ExampleLatency_Percentile() {
	var l Latency
	for _, cycles := range []int64{12, 15, 20, 24, 59} {
		l.Add(cycles)
	}
	fmt.Println(l.Percentile(50), l.Percentile(95), l.Percentile(100))
	fmt.Println(l.String())
	// Output:
	// 20 59 59
	// n=5 mean=26.0 p50=20 p95=59 max=59
}
