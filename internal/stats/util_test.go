package stats

import (
	"strings"
	"testing"

	"sr2201/internal/engine"
	"sr2201/internal/flit"
)

// tinyNet builds EP -> SW -> EP and pushes a packet through it.
func tinyNet(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.DefaultConfig())
	a := e.AddEndpoint("A", nil)
	b := e.AddEndpoint("B", nil)
	route := func(n *engine.Node, in int, h *flit.Header) (engine.Decision, error) {
		return engine.Decision{Outs: []int{1 - in}}, nil
	}
	sw := e.AddSwitch("SW", 2, route, nil)
	e.Connect(a, 0, sw, 0)
	e.Connect(b, 0, sw, 1)
	e.Inject(a, flit.NewPacket(&flit.Header{PacketID: 1}, 4))
	if !e.RunUntilQuiescent(100) {
		t.Fatal("did not drain")
	}
	return e
}

func TestTopPorts(t *testing.T) {
	e := tinyNet(t)
	ports := TopPorts(e, 0)
	if len(ports) != 1 {
		t.Fatalf("ports = %+v", ports)
	}
	p := ports[0]
	if p.Node != "SW" || p.Port != 1 || p.Busy != 4 {
		t.Errorf("port = %+v", p)
	}
	if p.Frac <= 0 || p.Frac > 1 {
		t.Errorf("frac = %v", p.Frac)
	}
	// Limit applies.
	if got := TopPorts(e, 1); len(got) != 1 {
		t.Errorf("limited ports = %d", len(got))
	}
}

func TestUtilizationTable(t *testing.T) {
	e := tinyNet(t)
	tb := UtilizationTable(e, 5)
	s := tb.String()
	if !strings.Contains(s, "SW.out1") || !strings.Contains(s, "Busiest") {
		t.Errorf("table = %s", s)
	}
}
