// Package stats collects and summarizes simulation measurements: packet
// latencies, throughput, and channel utilization. It also provides the plain
// text table formatting the experiment harness uses to print paper-style
// result tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Latency accumulates a distribution of per-packet latencies (in cycles).
// The zero value is ready to use.
type Latency struct {
	values []int64
	sorted bool
	sum    int64
	min    int64
	max    int64
}

// Add records one latency sample.
func (l *Latency) Add(v int64) {
	if len(l.values) == 0 || v < l.min {
		l.min = v
	}
	if len(l.values) == 0 || v > l.max {
		l.max = v
	}
	l.values = append(l.values, v)
	l.sum += v
	l.sorted = false
}

// Count reports the number of samples.
func (l *Latency) Count() int { return len(l.values) }

// Mean reports the average latency, or 0 with no samples.
func (l *Latency) Mean() float64 {
	if len(l.values) == 0 {
		return 0
	}
	return float64(l.sum) / float64(len(l.values))
}

// Min reports the smallest sample, or 0 with none.
func (l *Latency) Min() int64 { return l.min }

// Max reports the largest sample, or 0 with none.
func (l *Latency) Max() int64 { return l.max }

// Percentile reports the p-th percentile (0 < p <= 100) by nearest-rank.
func (l *Latency) Percentile(p float64) int64 {
	if len(l.values) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.values, func(i, j int) bool { return l.values[i] < l.values[j] })
		l.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(len(l.values))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(l.values) {
		rank = len(l.values)
	}
	return l.values[rank-1]
}

// String summarizes the distribution.
func (l *Latency) String() string {
	if len(l.values) == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p95=%d max=%d", l.Count(), l.Mean(), l.Percentile(50), l.Percentile(95), l.Max())
}

// Throughput converts a delivered-count over an interval into a rate.
func Throughput(delivered int64, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(delivered) / float64(cycles)
}

// Table formats rows of experiment results as aligned plain text, the way
// the harness prints each reproduced table/figure.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; values are formatted with %v (floats with %.3g
// via Cell).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.rows = append(t.rows, row)
}

// Cell formats one table cell.
func Cell(v any) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.3f", x)
	case float32:
		return fmt.Sprintf("%.3f", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
