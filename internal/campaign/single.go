package campaign

// Single-schedule runs: one machine driven through a scheduled mid-run fault
// sequence, reporting each event's in-flight casualties and the final
// retransmission accounting. This is mdxfault's single mode, extracted so
// the job server produces the exact same bytes: both call RunSingle with an
// io.Writer (the CLI passes os.Stdout, the server a buffer), making the HTTP
// artifact byte-identical to the CLI stdout by construction.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sr2201/internal/core"
	"sr2201/internal/deadlock"
	"sr2201/internal/engine"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/routing"
	"sr2201/internal/stats"
)

// SingleSpec describes one single-schedule run.
type SingleSpec struct {
	Shape geom.Shape
	// Events is the fault schedule, in activation order.
	Events []inject.Event
	// Pattern chooses each wave's destinations.
	Pattern Pattern
	// Waves/Gap/PacketSize/Horizon as in Spec.
	Waves      int
	Gap        int64
	PacketSize int
	Horizon    int64
	// Inject tunes recovery (retransmission etc.).
	Inject inject.Options
	// Ctx, if non-nil, cancels the run between cycles; RunSingle then
	// returns ctx.Err() with the report truncated mid-stream.
	Ctx context.Context
	// OnCycle, if non-nil, is called every progressInterval cycles with the
	// engine's hot-path counters — the job server's progress feed.
	OnCycle func(cycle int64, ctr engine.Counters)
}

// progressInterval is how often RunSingle samples OnCycle.
const progressInterval = 1024

// RunSingle drives one machine through the schedule, writing the full
// human-readable report (header, per-event casualties, accounting table,
// outcome line) to w. The returned outcome mirrors the printed verdict so
// the CLI can map it to an exit status.
func RunSingle(spec SingleSpec, w io.Writer) (deadlock.Outcome, error) {
	var outcome deadlock.Outcome
	if spec.Horizon <= 0 {
		spec.Horizon = 50_000
	}
	m, err := core.NewMachine(core.Config{
		Shape:          spec.Shape,
		PacketSize:     spec.PacketSize,
		StallThreshold: spec.Inject.StallThreshold,
	})
	if err != nil {
		return outcome, err
	}
	inj, err := inject.New(m, spec.Events, spec.Inject)
	if err != nil {
		return outcome, err
	}
	fmt.Fprintf(w, "shape=%v pattern=%s waves=%d gap=%d retransmit=%v\n",
		spec.Shape, spec.Pattern.Name, spec.Waves, spec.Gap, spec.Inject.Retransmit)
	for _, ev := range spec.Events {
		fmt.Fprintf(w, "scheduled: %s @ cycle %d\n", ev.Fault, ev.Cycle)
	}

	eng := m.Engine()
	if spec.OnCycle != nil {
		// Chain behind the injector's own PreCycle hook.
		prev := eng.PreCycle
		onCycle := spec.OnCycle
		eng.PreCycle = func(c int64) {
			if prev != nil {
				prev(c)
			}
			if c%progressInterval == 0 {
				onCycle(c, eng.Counters())
			}
		}
	}
	wd := deadlock.NewWatchdog(eng, spec.Inject.StallThreshold)
	offered, accepted, refused := 0, 0, 0
	reported := 0
	wave := 0
	for eng.Cycle() < spec.Horizon {
		if spec.Ctx != nil && eng.Cycle()%64 == 0 {
			if err := spec.Ctx.Err(); err != nil {
				return outcome, err
			}
		}
		if wave < spec.Waves && eng.Cycle() == int64(wave)*spec.Gap {
			spec.Shape.Enumerate(func(src geom.Coord) bool {
				if !m.Alive(src) {
					return true
				}
				dst := spec.Pattern.Dest(spec.Shape, src)
				if dst == src {
					return true
				}
				offered++
				if _, err := m.Send(src, dst, spec.PacketSize); err != nil {
					if errors.Is(err, routing.ErrUnreachable) {
						refused++
					}
					return true
				}
				accepted++
				return true
			})
			wave++
		}
		if wave >= spec.Waves && eng.Quiescent() && !inj.Pending() {
			outcome.Drained = true
			break
		}
		m.Step()
		for _, c := range inj.Casualties()[reported:] {
			fmt.Fprintf(w, "cycle %d: %s fails — %d packet(s) killed in flight\n",
				c.Cycle, c.Fault, len(c.Lost))
			for _, l := range c.Lost {
				if l.Known {
					fmt.Fprintf(w, "  killed pkt %d: %v -> %v (rc=%d, %d flits)\n",
						l.PacketID, l.Src, l.Dst, l.RC, l.Size)
				} else {
					fmt.Fprintf(w, "  killed pkt %d: header untraceable\n", l.PacketID)
				}
			}
			reported++
		}
		if wd.Stalled() {
			rep := deadlock.Analyze(eng)
			outcome.Stalled = true
			outcome.Deadlocked = rep.Deadlocked
			break
		}
	}
	if err := inj.Err(); err != nil {
		return outcome, err
	}
	outcome.Cycle = eng.Cycle()

	st := inj.Stats()
	t := stats.NewTable("dynamic-fault accounting",
		"offered", "accepted", "refused", "delivered",
		"killed", "retx", "recovered", "lost-unreach", "lost-exhaust", "dup")
	t.AddRow(offered, accepted, refused, len(m.Deliveries()),
		st.KilledInFlight+st.DropsEnRoute, st.Retransmits, st.Recovered,
		st.LostUnreachable, st.LostExhausted, st.Duplicates)
	fmt.Fprintln(w)
	fmt.Fprint(w, t.String())
	switch {
	case outcome.Deadlocked:
		fmt.Fprintf(w, "outcome: DEADLOCK at cycle %d\n", outcome.Cycle)
	case outcome.Stalled:
		fmt.Fprintf(w, "outcome: stalled at cycle %d (no cyclic wait)\n", outcome.Cycle)
	case outcome.Drained:
		fmt.Fprintf(w, "outcome: drained at cycle %d\n", outcome.Cycle)
	default:
		fmt.Fprintf(w, "outcome: horizon %d exceeded\n", spec.Horizon)
	}
	return outcome, nil
}

// ParsePattern parses one traffic-pattern name: shift+K | reverse. The CLI
// and the job server share it so they accept identical spellings.
func ParsePattern(name string) (Pattern, error) {
	name = strings.TrimSpace(name)
	switch {
	case name == "reverse":
		return Reverse(), nil
	case strings.HasPrefix(name, "shift+"):
		k, err := strconv.Atoi(strings.TrimPrefix(name, "shift+"))
		if err != nil || k < 1 {
			return Pattern{}, fmt.Errorf("campaign: bad shift pattern %q", name)
		}
		return Shift(k), nil
	default:
		return Pattern{}, fmt.Errorf("campaign: unknown pattern %q (shift+K | reverse)", name)
	}
}

// ParsePatterns parses a comma-separated pattern list.
func ParsePatterns(s string) ([]Pattern, error) {
	var out []Pattern
	for _, name := range strings.Split(s, ",") {
		p, err := ParsePattern(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: empty pattern list")
	}
	return out, nil
}

// ParseEpochs parses a comma-separated list of non-negative activation
// cycles.
func ParseEpochs(s string) ([]int64, error) {
	var out []int64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("campaign: bad epoch %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: empty epoch list")
	}
	return out, nil
}
