package campaign

// Single-schedule runs: one machine driven through a scheduled mid-run fault
// sequence, reporting each event's in-flight casualties and the final
// retransmission accounting. This is mdxfault's single mode, extracted so
// the job server produces the exact same bytes: both call RunSingle with an
// io.Writer (the CLI passes os.Stdout, the server a buffer), making the HTTP
// artifact byte-identical to the CLI stdout by construction.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sr2201/internal/core"
	"sr2201/internal/deadlock"
	"sr2201/internal/engine"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/routing"
	"sr2201/internal/stats"
)

// SingleSpec describes one single-schedule run.
type SingleSpec struct {
	Shape geom.Shape
	// Events is the fault schedule, in activation order.
	Events []inject.Event
	// Pattern chooses each wave's destinations.
	Pattern Pattern
	// Waves/Gap/PacketSize/Horizon as in Spec.
	Waves      int
	Gap        int64
	PacketSize int
	Horizon    int64
	// Inject tunes recovery (retransmission etc.).
	Inject inject.Options
	// Ctx, if non-nil, cancels the run between cycles; RunSingle then
	// returns ctx.Err() with the report truncated mid-stream.
	Ctx context.Context
	// OnCycle, if non-nil, is called every progressInterval cycles with the
	// engine's hot-path counters — the job server's progress feed.
	OnCycle func(cycle int64, ctr engine.Counters)
}

// progressInterval is how often RunSingle samples OnCycle.
const progressInterval = 1024

// SingleRun is RunSingle as a resumable stepper: the same loop broken at
// cycle granularity, so a caller (the job server) can snapshot between
// Steps and, after a crash, resume with the report stream — including the
// already-printed casualty lines — re-rendered byte-identically.
type SingleRun struct {
	spec SingleSpec
	m    *core.Machine
	inj  *inject.Injector
	wd   *deadlock.Watchdog
	w    io.Writer

	offered, accepted, refused int
	reported                   int
	wave                       int
	outcome                    deadlock.Outcome
	done                       bool
}

// NewSingleRun builds the run and writes the report preamble (header plus
// schedule lines) to w.
func NewSingleRun(spec SingleSpec, w io.Writer) (*SingleRun, error) {
	if spec.Horizon <= 0 {
		spec.Horizon = 50_000
	}
	m, err := core.NewMachine(core.Config{
		Shape:          spec.Shape,
		PacketSize:     spec.PacketSize,
		StallThreshold: spec.Inject.StallThreshold,
	})
	if err != nil {
		return nil, err
	}
	inj, err := inject.New(m, spec.Events, spec.Inject)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "shape=%v pattern=%s waves=%d gap=%d retransmit=%v\n",
		spec.Shape, spec.Pattern.Name, spec.Waves, spec.Gap, spec.Inject.Retransmit)
	for _, ev := range spec.Events {
		fmt.Fprintf(w, "scheduled: %s @ cycle %d\n", ev.Fault, ev.Cycle)
	}

	eng := m.Engine()
	if spec.OnCycle != nil {
		// Chain behind the injector's own PreCycle hook.
		prev := eng.PreCycle
		onCycle := spec.OnCycle
		eng.PreCycle = func(c int64) {
			if prev != nil {
				prev(c)
			}
			if c%progressInterval == 0 {
				onCycle(c, eng.Counters())
			}
		}
	}
	return &SingleRun{
		spec: spec, m: m, inj: inj, w: w,
		wd: deadlock.NewWatchdog(eng, spec.Inject.StallThreshold),
	}, nil
}

// Machine exposes the run's machine (the replay tooling reads its engine).
func (r *SingleRun) Machine() *core.Machine { return r.m }

// Cycle returns the run's current simulation time.
func (r *SingleRun) Cycle() int64 { return r.m.Cycle() }

// Done reports whether the run has reached its verdict.
func (r *SingleRun) Done() bool { return r.done }

func (r *SingleRun) printCasualty(c inject.Casualty) {
	fmt.Fprintf(r.w, "cycle %d: %s fails — %d packet(s) killed in flight\n",
		c.Cycle, c.Fault, len(c.Lost))
	for _, l := range c.Lost {
		if l.Known {
			fmt.Fprintf(r.w, "  killed pkt %d: %v -> %v (rc=%d, %d flits)\n",
				l.PacketID, l.Src, l.Dst, l.RC, l.Size)
		} else {
			fmt.Fprintf(r.w, "  killed pkt %d: header untraceable\n", l.PacketID)
		}
	}
}

// Step advances one cycle (injecting any due wave first, reporting new
// casualties after) and returns true when the run is finished. Step on a
// finished run is a no-op returning true.
func (r *SingleRun) Step() bool {
	if r.done {
		return true
	}
	eng := r.m.Engine()
	if eng.Cycle() >= r.spec.Horizon {
		r.done = true
		return true
	}
	if r.wave < r.spec.Waves && eng.Cycle() == int64(r.wave)*r.spec.Gap {
		r.spec.Shape.Enumerate(func(src geom.Coord) bool {
			if !r.m.Alive(src) {
				return true
			}
			dst := r.spec.Pattern.Dest(r.spec.Shape, src)
			if dst == src {
				return true
			}
			r.offered++
			if _, err := r.m.Send(src, dst, r.spec.PacketSize); err != nil {
				if errors.Is(err, routing.ErrUnreachable) {
					r.refused++
				}
				return true
			}
			r.accepted++
			return true
		})
		r.wave++
	}
	if r.wave >= r.spec.Waves && eng.Quiescent() && !r.inj.Pending() {
		r.outcome.Drained = true
		r.done = true
		return true
	}
	r.m.Step()
	for _, c := range r.inj.Casualties()[r.reported:] {
		r.printCasualty(c)
		r.reported++
	}
	if r.wd.Stalled() {
		rep := deadlock.Analyze(eng)
		r.outcome.Stalled = true
		r.outcome.Deadlocked = rep.Deadlocked
		r.done = true
	}
	if eng.Cycle() >= r.spec.Horizon {
		r.done = true
	}
	return r.done
}

// Finish writes the accounting table and outcome line and returns the
// outcome. Call once, after Step reports done (calling it on an unfinished
// run reports on the traffic so far).
func (r *SingleRun) Finish() (deadlock.Outcome, error) {
	if err := r.inj.Err(); err != nil {
		return r.outcome, err
	}
	r.outcome.Cycle = r.m.Engine().Cycle()

	st := r.inj.Stats()
	t := stats.NewTable("dynamic-fault accounting",
		"offered", "accepted", "refused", "delivered",
		"killed", "retx", "recovered", "lost-unreach", "lost-exhaust", "dup")
	t.AddRow(r.offered, r.accepted, r.refused, len(r.m.Deliveries()),
		st.KilledInFlight+st.DropsEnRoute, st.Retransmits, st.Recovered,
		st.LostUnreachable, st.LostExhausted, st.Duplicates)
	fmt.Fprintln(r.w)
	fmt.Fprint(r.w, t.String())
	switch {
	case r.outcome.Deadlocked:
		fmt.Fprintf(r.w, "outcome: DEADLOCK at cycle %d\n", r.outcome.Cycle)
	case r.outcome.Stalled:
		fmt.Fprintf(r.w, "outcome: stalled at cycle %d (no cyclic wait)\n", r.outcome.Cycle)
	case r.outcome.Drained:
		fmt.Fprintf(r.w, "outcome: drained at cycle %d\n", r.outcome.Cycle)
	default:
		fmt.Fprintf(r.w, "outcome: horizon %d exceeded\n", r.spec.Horizon)
	}
	return r.outcome, nil
}

// RunSingle drives one machine through the schedule, writing the full
// human-readable report (header, per-event casualties, accounting table,
// outcome line) to w. The returned outcome mirrors the printed verdict so
// the CLI can map it to an exit status.
func RunSingle(spec SingleSpec, w io.Writer) (deadlock.Outcome, error) {
	r, err := NewSingleRun(spec, w)
	if err != nil {
		return deadlock.Outcome{}, err
	}
	for !r.Step() {
		if spec.Ctx != nil && r.Cycle()%64 == 0 {
			if err := spec.Ctx.Err(); err != nil {
				return r.outcome, err
			}
		}
	}
	return r.Finish()
}

// ParsePattern parses one traffic-pattern name: shift+K | reverse. The CLI
// and the job server share it so they accept identical spellings.
func ParsePattern(name string) (Pattern, error) {
	name = strings.TrimSpace(name)
	switch {
	case name == "reverse":
		return Reverse(), nil
	case strings.HasPrefix(name, "shift+"):
		k, err := strconv.Atoi(strings.TrimPrefix(name, "shift+"))
		if err != nil || k < 1 {
			return Pattern{}, fmt.Errorf("campaign: bad shift pattern %q", name)
		}
		return Shift(k), nil
	default:
		return Pattern{}, fmt.Errorf("campaign: unknown pattern %q (shift+K | reverse)", name)
	}
}

// ParsePatterns parses a comma-separated pattern list.
func ParsePatterns(s string) ([]Pattern, error) {
	var out []Pattern
	for _, name := range strings.Split(s, ",") {
		p, err := ParsePattern(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: empty pattern list")
	}
	return out, nil
}

// ParseEpochs parses a comma-separated list of non-negative activation
// cycles.
func ParseEpochs(s string) ([]int64, error) {
	var out []int64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("campaign: bad epoch %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: empty epoch list")
	}
	return out, nil
}
