package campaign

// Single-schedule runs: one machine driven through a scheduled mid-run fault
// sequence, reporting each event's in-flight casualties and the final
// retransmission accounting. This is mdxfault's single mode, extracted so
// the job server produces the exact same bytes: both call RunSingle with an
// io.Writer (the CLI passes os.Stdout, the server a buffer), making the HTTP
// artifact byte-identical to the CLI stdout by construction.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"sr2201/internal/core"
	"sr2201/internal/deadlock"
	"sr2201/internal/engine"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/reconfig"
	"sr2201/internal/recovery"
	"sr2201/internal/routing"
	"sr2201/internal/stats"
)

// SingleSpec describes one single-schedule run.
type SingleSpec struct {
	Shape geom.Shape
	// Topology selects the machine's interconnect (see Spec.Topology).
	Topology string
	// Events is the fault schedule, in activation order.
	Events []inject.Event
	// Pattern chooses each wave's destinations.
	Pattern Pattern
	// Waves/Gap/PacketSize/Horizon as in Spec.
	Waves      int
	Gap        int64
	PacketSize int
	Horizon    int64
	// Inject tunes recovery (retransmission etc.).
	Inject inject.Options
	// Recovery enables the liveness layer (as in Spec.Recovery).
	Recovery recovery.Options
	// Preset faults are installed before any traffic.
	Preset []fault.Fault
	// Broadcasts schedules broadcast injections alongside the unicast
	// waves, in ascending cycle order.
	Broadcasts []Broadcast
	// SXB/DXB/DXBSeparate/NaiveBroadcast/PivotLastDim forward to
	// core.Config, selecting the crossbar design variant under test.
	SXB            geom.Coord
	DXB            geom.Coord
	DXBSeparate    bool
	NaiveBroadcast bool
	PivotLastDim   bool
	// VCs/Adaptive forward to core.Config: virtual channels per wire and
	// escape-VC adaptive routing.
	VCs      int
	Adaptive bool
	// Shards steps the machine on that many spatial shards (see
	// core.Config.Shards); the report bytes are identical at any count.
	Shards int
	// Reconfig/ReconfigDrainBudget enable online reconfiguration (see
	// Spec.Reconfig); every attempt prints one event line plus its refusal
	// and union witnesses.
	Reconfig            string
	ReconfigDrainBudget int
	// Ctx, if non-nil, cancels the run between cycles; RunSingle then
	// returns ctx.Err() with the report truncated mid-stream.
	Ctx context.Context
	// OnCycle, if non-nil, is called every progressInterval cycles with the
	// engine's hot-path counters — the job server's progress feed.
	OnCycle func(cycle int64, ctr engine.Counters)
	// OnRecovery, if non-nil, is called for every recovery event, after the
	// report line is written (the job server's recovery feed).
	OnRecovery func(recovery.Event)
	// OnReconfig, if non-nil, is called for every reconfiguration event,
	// after its report block is written (the job server's reconfig feed).
	OnReconfig func(reconfig.Event)
}

// progressInterval is how often RunSingle samples OnCycle.
const progressInterval = 1024

// SingleRun is RunSingle as a resumable stepper: the same loop broken at
// cycle granularity, so a caller (the job server) can snapshot between
// Steps and, after a crash, resume with the report stream — including the
// already-printed casualty lines — re-rendered byte-identically.
type SingleRun struct {
	spec SingleSpec
	m    *core.Machine
	inj  *inject.Injector
	wd   *deadlock.Watchdog
	sup  *recovery.Supervisor
	mgr  *reconfig.Manager
	w    io.Writer

	offered, accepted, refused int
	bcasts, bcastsRefused      int
	bcastCopiesExpected        int
	reported                   int
	reportedRecov              int
	reportedReconfig           int
	wave                       int
	bNext                      int
	outcome                    deadlock.Outcome
	livelocked                 bool
	done                       bool
}

// NewSingleRun builds the run and writes the report preamble (header plus
// schedule lines) to w.
func NewSingleRun(spec SingleSpec, w io.Writer) (*SingleRun, error) {
	if spec.Horizon <= 0 {
		spec.Horizon = 50_000
	}
	if spec.Topology != "" && spec.Topology != core.TopologyMDX && len(spec.Broadcasts) > 0 {
		return nil, fmt.Errorf("campaign: topology %q has no hardware broadcast; remove the broadcast schedule", spec.Topology)
	}
	if len(spec.Broadcasts) > 0 {
		for _, b := range spec.Broadcasts {
			if b.Cycle < 0 {
				return nil, fmt.Errorf("campaign: negative broadcast cycle %d", b.Cycle)
			}
		}
		bs := append([]Broadcast(nil), spec.Broadcasts...)
		sort.SliceStable(bs, func(i, j int) bool { return bs[i].Cycle < bs[j].Cycle })
		spec.Broadcasts = bs
	}
	m, err := core.NewMachine(core.Config{
		Shape:          spec.Shape,
		Topology:       spec.Topology,
		SXB:            spec.SXB,
		DXB:            spec.DXB,
		DXBSeparate:    spec.DXBSeparate,
		NaiveBroadcast: spec.NaiveBroadcast,
		PivotLastDim:   spec.PivotLastDim,
		VCs:            spec.VCs,
		Adaptive:       spec.Adaptive,
		PacketSize:     spec.PacketSize,
		StallThreshold: spec.Inject.StallThreshold,
		Shards:         spec.Shards,
		Reconfig:       spec.Reconfig,
	})
	if err != nil {
		return nil, err
	}
	for _, f := range spec.Preset {
		if err := m.AddFault(f); err != nil {
			return nil, fmt.Errorf("campaign: preset fault: %w", err)
		}
	}
	inj, err := inject.New(m, spec.Events, spec.Inject)
	if err != nil {
		return nil, err
	}
	r := &SingleRun{spec: spec, m: m, inj: inj, w: w}
	if spec.Recovery.Enabled {
		r.sup = recovery.New(m, inj, spec.Recovery)
		r.sup.OnEvent(func(ev recovery.Event) {
			fmt.Fprintf(w, "%s\n", ev)
			r.reportedRecov++
			if spec.OnRecovery != nil {
				spec.OnRecovery(ev)
			}
		})
	}
	if spec.Reconfig != "" {
		mgr, err := reconfig.New(m, reconfig.Options{DrainBudget: spec.ReconfigDrainBudget})
		if err != nil {
			return nil, err
		}
		mgr.OnDrained(inj.LoseDrained)
		if r.sup != nil && mgr.CoversDeadlock() {
			r.sup.OnDeadlock(mgr.OnDeadlock)
		}
		r.mgr = mgr
	}
	if spec.Topology != "" && spec.Topology != core.TopologyMDX {
		fmt.Fprintf(w, "topology=%s\n", spec.Topology)
	}
	fmt.Fprintf(w, "shape=%v pattern=%s waves=%d gap=%d retransmit=%v\n",
		spec.Shape, spec.Pattern.Name, spec.Waves, spec.Gap, spec.Inject.Retransmit)
	for _, f := range spec.Preset {
		fmt.Fprintf(w, "preset: %s\n", f)
	}
	for _, ev := range spec.Events {
		fmt.Fprintf(w, "scheduled: %s @ cycle %d\n", ev.Fault, ev.Cycle)
	}
	for _, b := range spec.Broadcasts {
		fmt.Fprintf(w, "scheduled: broadcast from %v @ cycle %d\n", b.Src, b.Cycle)
	}
	if r.sup != nil {
		opt := r.sup.Options()
		fmt.Fprintf(w, "recovery: enabled (stall-threshold=%d max-recoveries=%d)\n",
			opt.StallThreshold, opt.MaxRecoveries)
	}
	if r.mgr != nil {
		fmt.Fprintf(w, "reconfig: enabled (mode=%s drain-budget=%d)\n",
			spec.Reconfig, r.mgr.Options().DrainBudget)
	}

	eng := m.Engine()
	if spec.OnCycle != nil {
		// Chain behind the injector's own PreCycle hook.
		prev := eng.PreCycle
		onCycle := spec.OnCycle
		eng.PreCycle = func(c int64) {
			if prev != nil {
				prev(c)
			}
			if c%progressInterval == 0 {
				onCycle(c, eng.Counters())
			}
		}
	}
	r.wd = deadlock.NewWatchdog(eng, spec.Inject.StallThreshold)
	return r, nil
}

// Machine exposes the run's machine (the replay tooling reads its engine).
func (r *SingleRun) Machine() *core.Machine { return r.m }

// Cycle returns the run's current simulation time.
func (r *SingleRun) Cycle() int64 { return r.m.Cycle() }

// Done reports whether the run has reached its verdict.
func (r *SingleRun) Done() bool { return r.done }

// Livelocked reports whether the recovery layer escalated to the
// ErrLivelock verdict (per-packet recovery cap exceeded).
func (r *SingleRun) Livelocked() bool { return r.livelocked }

// Recoveries returns the number of victims the recovery layer purged from
// confirmed wait cycles (0 when recovery is disabled).
func (r *SingleRun) Recoveries() int {
	if r.sup == nil {
		return 0
	}
	return r.sup.Stats().Recoveries
}

// ReconfigStats returns the online-reconfiguration accounting (the zero
// value when reconfiguration is disabled).
func (r *SingleRun) ReconfigStats() reconfig.Stats {
	if r.mgr == nil {
		return reconfig.Stats{}
	}
	return r.mgr.Stats()
}

func (r *SingleRun) printCasualty(c inject.Casualty) {
	fmt.Fprintf(r.w, "cycle %d: %s fails — %d packet(s) killed in flight\n",
		c.Cycle, c.Fault, len(c.Lost))
	for _, l := range c.Lost {
		if l.Known {
			fmt.Fprintf(r.w, "  killed pkt %d: %v -> %v (rc=%d, %d flits)\n",
				l.PacketID, l.Src, l.Dst, l.RC, l.Size)
		} else {
			fmt.Fprintf(r.w, "  killed pkt %d: header untraceable\n", l.PacketID)
		}
	}
}

// printReconfig renders one reconfiguration attempt: the event line plus the
// concrete witnesses — every statically refused candidate's dependence cycle
// and, when a drain was forced, the cyclic union's. All deterministic (the
// prover's cycle search is id-ordered), so the block is replay-stable.
func (r *SingleRun) printReconfig(ev reconfig.Event) {
	fmt.Fprintf(r.w, "%s\n", ev)
	for _, ref := range ev.Refusals {
		fmt.Fprintf(r.w, "  refused %s: cycle [%s]\n", ref.Scheme, strings.Join(ref.Cycle, " -> "))
	}
	for _, msg := range ev.Errors {
		fmt.Fprintf(r.w, "  unbuildable candidate: %s\n", msg)
	}
	if ev.Outcome == reconfig.OutcomeDrain {
		fmt.Fprintf(r.w, "  union cycle [%s]\n", strings.Join(ev.Union.Cycle, " -> "))
	}
}

// Step advances one cycle (injecting any due wave first, reporting new
// casualties after) and returns true when the run is finished. Step on a
// finished run is a no-op returning true.
func (r *SingleRun) Step() bool {
	if r.done {
		return true
	}
	eng := r.m.Engine()
	if eng.Cycle() >= r.spec.Horizon {
		r.done = true
		return true
	}
	if r.wave < r.spec.Waves && eng.Cycle() == int64(r.wave)*r.spec.Gap {
		r.spec.Shape.Enumerate(func(src geom.Coord) bool {
			if !r.m.Alive(src) {
				return true
			}
			dst := r.spec.Pattern.Dest(r.spec.Shape, src)
			if dst == src {
				return true
			}
			r.offered++
			if _, err := r.m.Send(src, dst, r.spec.PacketSize); err != nil {
				if errors.Is(err, routing.ErrUnreachable) {
					r.refused++
				}
				return true
			}
			r.accepted++
			return true
		})
		r.wave++
	}
	for r.bNext < len(r.spec.Broadcasts) && r.spec.Broadcasts[r.bNext].Cycle <= eng.Cycle() {
		b := r.spec.Broadcasts[r.bNext]
		r.bNext++
		if _, copies, err := r.m.Broadcast(b.Src, b.Size); err != nil {
			r.bcastsRefused++
		} else {
			r.bcasts++
			r.bcastCopiesExpected += copies
		}
	}
	if r.wave >= r.spec.Waves && r.bNext >= len(r.spec.Broadcasts) &&
		eng.Quiescent() && !r.inj.Pending() {
		r.outcome.Drained = true
		r.done = true
		return true
	}
	r.m.Step()
	for _, c := range r.inj.Casualties()[r.reported:] {
		r.printCasualty(c)
		r.reported++
	}
	if r.mgr != nil {
		for _, ev := range r.mgr.Events()[r.reportedReconfig:] {
			r.printReconfig(ev)
			r.reportedReconfig++
			if r.spec.OnReconfig != nil {
				r.spec.OnReconfig(ev)
			}
		}
	}
	if r.sup != nil {
		// The liveness layer owns the stall verdict: it recovers what it
		// can and decides only when it cannot.
		if v := r.sup.Verdict(); v.Decided {
			r.outcome.Stalled = true
			r.outcome.Deadlocked = v.Deadlocked
			r.livelocked = v.Livelocked
			r.done = true
		}
	} else if r.wd.Stalled() {
		rep := deadlock.Analyze(eng)
		r.outcome.Stalled = true
		r.outcome.Deadlocked = rep.Deadlocked
		r.done = true
	}
	if eng.Cycle() >= r.spec.Horizon {
		r.done = true
	}
	return r.done
}

// Finish writes the accounting table and outcome line and returns the
// outcome. Call once, after Step reports done (calling it on an unfinished
// run reports on the traffic so far).
func (r *SingleRun) Finish() (deadlock.Outcome, error) {
	if err := r.inj.Err(); err != nil {
		return r.outcome, err
	}
	r.outcome.Cycle = r.m.Engine().Cycle()

	st := r.inj.Stats()
	delivered, bcopies := 0, 0
	for _, d := range r.m.Deliveries() {
		if d.Broadcast {
			bcopies++
		} else {
			delivered++
		}
	}
	t := stats.NewTable("dynamic-fault accounting",
		"offered", "accepted", "refused", "bcast", "delivered", "bcopies",
		"killed", "victims", "retx", "recovered", "lost-unreach", "lost-exhaust", "dup")
	t.AddRow(r.offered, r.accepted, r.refused, r.bcasts, delivered, bcopies,
		st.KilledInFlight+st.DropsEnRoute, st.Victims, st.Retransmits, st.Recovered,
		st.LostUnreachable, st.LostExhausted, st.Duplicates)
	fmt.Fprintln(r.w)
	fmt.Fprint(r.w, t.String())
	if r.sup != nil {
		s := r.sup.Stats()
		fmt.Fprintf(r.w, "recoveries: %d (stalls detected %d, unrecoverable %d)\n",
			s.Recoveries, s.StallsDetected, s.VictimsUnrecoverable)
	}
	if r.mgr != nil {
		if err := r.mgr.Err(); err != nil {
			return r.outcome, err
		}
		s := r.mgr.Stats()
		fmt.Fprintf(r.w, "reconfig: %d attempts, %d hot swaps, %d drains (%d packets), %d fallbacks, %d refusals\n",
			s.Attempts, s.HotSwaps, s.Drains, s.DrainedPackets, s.Fallbacks, s.Refusals)
	}
	switch {
	case r.livelocked:
		fmt.Fprintf(r.w, "outcome: LIVELOCK at cycle %d (per-packet recovery cap exceeded)\n", r.outcome.Cycle)
	case r.outcome.Deadlocked:
		fmt.Fprintf(r.w, "outcome: DEADLOCK at cycle %d\n", r.outcome.Cycle)
	case r.outcome.Stalled:
		fmt.Fprintf(r.w, "outcome: stalled at cycle %d (no cyclic wait)\n", r.outcome.Cycle)
	case r.outcome.Drained:
		fmt.Fprintf(r.w, "outcome: drained at cycle %d\n", r.outcome.Cycle)
	default:
		fmt.Fprintf(r.w, "outcome: horizon %d exceeded\n", r.spec.Horizon)
	}
	return r.outcome, nil
}

// RunSingle drives one machine through the schedule, writing the full
// human-readable report (header, per-event casualties, accounting table,
// outcome line) to w. The returned outcome mirrors the printed verdict so
// the CLI can map it to an exit status.
func RunSingle(spec SingleSpec, w io.Writer) (deadlock.Outcome, error) {
	r, err := NewSingleRun(spec, w)
	if err != nil {
		return deadlock.Outcome{}, err
	}
	for !r.Step() {
		if spec.Ctx != nil && r.Cycle()%64 == 0 {
			if err := spec.Ctx.Err(); err != nil {
				return r.outcome, err
			}
		}
	}
	return r.Finish()
}

// parsePairCoord parses one "2,1"-style endpoint of a pair pattern,
// returning the coordinate and its dimensionality.
func parsePairCoord(s string) (geom.Coord, int, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) < 1 || len(parts) > geom.MaxDims {
		return geom.Coord{}, 0, fmt.Errorf("coordinate %q needs 1..%d components", s, geom.MaxDims)
	}
	var c geom.Coord
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return geom.Coord{}, 0, fmt.Errorf("bad coordinate component %q", p)
		}
		c[i] = v
	}
	return c, len(parts), nil
}

// ParsePattern parses one traffic-pattern name: shift+K | reverse |
// pair:SRC>DST. The CLI and the job server share it so they accept
// identical spellings.
func ParsePattern(name string) (Pattern, error) {
	name = strings.TrimSpace(name)
	switch {
	case name == "reverse":
		return Reverse(), nil
	case strings.HasPrefix(name, "shift+"):
		k, err := strconv.Atoi(strings.TrimPrefix(name, "shift+"))
		if err != nil || k < 1 {
			return Pattern{}, fmt.Errorf("campaign: bad shift pattern %q", name)
		}
		return Shift(k), nil
	case strings.HasPrefix(name, "pair:"):
		rest := strings.TrimPrefix(name, "pair:")
		halves := strings.Split(rest, ">")
		if len(halves) != 2 {
			return Pattern{}, fmt.Errorf("campaign: bad pair pattern %q (want pair:SRC>DST)", name)
		}
		src, sd, err := parsePairCoord(halves[0])
		if err != nil {
			return Pattern{}, fmt.Errorf("campaign: bad pair pattern %q: %v", name, err)
		}
		dst, dd, err := parsePairCoord(halves[1])
		if err != nil {
			return Pattern{}, fmt.Errorf("campaign: bad pair pattern %q: %v", name, err)
		}
		if sd != dd {
			return Pattern{}, fmt.Errorf("campaign: pair pattern %q mixes %d- and %d-dimensional endpoints", name, sd, dd)
		}
		if src == dst {
			return Pattern{}, fmt.Errorf("campaign: pair pattern %q sends to itself", name)
		}
		return Pair(src, dst, sd), nil
	default:
		return Pattern{}, fmt.Errorf("campaign: unknown pattern %q (shift+K | reverse | pair:SRC>DST)", name)
	}
}

// pairComplete reports whether a "pair:..." spec has both endpoints: a '>'
// with as many destination components as source components. ParsePatterns
// uses it to re-join the comma-separated tokens of one pair spec.
func pairComplete(s string) bool {
	rest := strings.TrimPrefix(strings.TrimSpace(s), "pair:")
	gt := strings.IndexByte(rest, '>')
	if gt < 0 {
		return false
	}
	return strings.Count(rest[gt+1:], ",") >= strings.Count(rest[:gt], ",")
}

// ParsePatterns parses a comma-separated pattern list. Pair specs contain
// commas of their own ("pair:0,1>2,2"); their tokens are re-joined until the
// destination is as long as the source.
func ParsePatterns(s string) ([]Pattern, error) {
	tokens := strings.Split(s, ",")
	var out []Pattern
	for i := 0; i < len(tokens); i++ {
		name := tokens[i]
		if strings.HasPrefix(strings.TrimSpace(name), "pair:") {
			for !pairComplete(name) && i+1 < len(tokens) {
				i++
				name += "," + tokens[i]
			}
		}
		p, err := ParsePattern(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: empty pattern list")
	}
	return out, nil
}

// ParseEpochs parses a comma-separated list of non-negative activation
// cycles.
func ParseEpochs(s string) ([]int64, error) {
	var out []int64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("campaign: bad epoch %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: empty epoch list")
	}
	return out, nil
}
