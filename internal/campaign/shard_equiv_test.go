package campaign

// The campaign-level face of the sharded-vs-serial equivalence wall: every
// cell workload kind this package can express — traffic patterns, preset and
// mid-run fault schedules, retransmission, broadcasts, deadlock recovery —
// must produce a per-cycle engine StateHash stream byte-identical to the
// serial run at every shard count, and a checkpoint taken under one shard
// count must restore under any other and stay on the same stream.

import (
	"fmt"
	"strings"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/recovery"
)

// shardWorkloads is the cross-kind workload matrix. Shapes stay small so the
// full matrix × shard counts runs in test time; every fault/recovery feature
// of the cell runner appears in at least one entry.
func shardWorkloads() map[string]Spec {
	return map[string]Spec{
		"shift-fault-retx": {
			Shape:   geom.MustShape(4, 4),
			Events:  []inject.Event{{Cycle: 12, Fault: fault.RouterFault(geom.Coord{1, 1})}},
			Pattern: Shift(5),
			Waves:   3,
			Gap:     16,
			Inject:  inject.Options{Retransmit: true, RetryAfter: 48, MaxRetries: 3},
		},
		"reverse-preset-bcast": {
			Shape:      geom.MustShape(4, 4),
			Pattern:    Reverse(),
			Waves:      2,
			Gap:        24,
			Preset:     []fault.Fault{fault.XBFault(geom.Line{Dim: 1, Fixed: geom.Coord{2}})},
			Broadcasts: []Broadcast{{Cycle: 8, Src: geom.Coord{0, 0}}, {Cycle: 40, Src: geom.Coord{3, 3}}},
		},
		"pair-3d-xbfault": {
			Shape:   geom.MustShape(3, 3, 2),
			Events:  []inject.Event{{Cycle: 20, Fault: fault.XBFault(geom.Line{Dim: 0, Fixed: geom.Coord{0, 1, 1}})}},
			Pattern: Pair(geom.Coord{0, 0, 0}, geom.Coord{2, 2, 1}, 3),
			Waves:   4,
			Gap:     12,
			Inject:  inject.Options{Retransmit: true, RetryAfter: 32},
		},
		"recovery-deadlock": {
			// The Fig. 9 deadlock-prone variant with recovery enabled: the
			// liveness layer's purge/retransmit decisions must replay
			// identically under sharding.
			Shape:       geom.MustShape(4, 4),
			Pattern:     Shift(3),
			Waves:       3,
			Gap:         8,
			DXBSeparate: true,
			DXB:         geom.Coord{0, 2},
			Events:      []inject.Event{{Cycle: 10, Fault: fault.RouterFault(geom.Coord{2, 2})}},
			Inject:      inject.Options{Retransmit: true, RetryAfter: 40},
			Recovery:    recovery.Options{Enabled: true},
			Horizon:     8_000,
		},
	}
}

// cellStream runs the cell to completion, recording the engine StateHash
// after every Step, and returns the stream plus the verdict.
func cellStream(t *testing.T, spec Spec) ([]uint64, CellResult) {
	t.Helper()
	c, err := NewCellRun(spec)
	if err != nil {
		t.Fatalf("NewCellRun: %v", err)
	}
	var stream []uint64
	for !c.Step() {
		stream = append(stream, c.Machine().Engine().StateHash())
	}
	stream = append(stream, c.Machine().Engine().StateHash())
	res, err := c.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	return stream, res
}

func TestShardEquivalenceAcrossWorkloads(t *testing.T) {
	for name, spec := range shardWorkloads() {
		name, spec := name, spec
		t.Run(name, func(t *testing.T) {
			serialStream, serialRes := cellStream(t, spec)
			for _, shards := range []int{1, 2, 3, 4} {
				s := spec
				s.Shards = shards
				stream, res := cellStream(t, s)
				if len(stream) != len(serialStream) {
					t.Fatalf("shards=%d: %d cycles, serial ran %d", shards, len(stream), len(serialStream))
				}
				for i := range stream {
					if stream[i] != serialStream[i] {
						t.Fatalf("shards=%d: hash stream diverged at cycle %d: %#x vs %#x",
							shards, i+1, stream[i], serialStream[i])
					}
				}
				if fmt.Sprintf("%+v", res) != fmt.Sprintf("%+v", serialRes) {
					t.Errorf("shards=%d: verdict diverged:\nserial:  %+v\nsharded: %+v", shards, serialRes, res)
				}
			}
		})
	}
}

func TestShardCheckpointCrossCount(t *testing.T) {
	// A checkpoint taken mid-run under one shard count restores under any
	// other and continues on the serial byte stream.
	spec := shardWorkloads()["shift-fault-retx"]
	donorSpec := spec
	donorSpec.Shards = 3
	donor, err := NewCellRun(donorSpec)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewCellRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if donor.Step() || serial.Step() {
			t.Fatal("cell finished before the checkpoint point; slow the workload down")
		}
	}
	snap := donor.Snapshot()
	for _, shards := range []int{0, 2, 4} {
		rs := spec
		rs.Shards = shards
		restored, err := NewCellRun(rs)
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.Restore(snap); err != nil {
			t.Fatalf("restore at shards=%d: %v", shards, err)
		}
		ref, err := NewCellRun(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Restore(snap); err != nil {
			t.Fatal(err)
		}
		for cycle := 0; ; cycle++ {
			da, db := ref.Step(), restored.Step()
			if ha, hb := ref.Machine().Engine().StateHash(), restored.Machine().Engine().StateHash(); ha != hb {
				t.Fatalf("shards=%d: diverged %d cycles after restore: %#x vs %#x", shards, cycle+1, ha, hb)
			}
			if da != db {
				t.Fatalf("shards=%d: termination skew %d cycles after restore", shards, cycle+1)
			}
			if da {
				break
			}
		}
	}
}

func TestSingleRunShardedBytesIdentical(t *testing.T) {
	// RunSingle's whole printed report — casualty lines, recovery events,
	// accounting table, outcome — is byte-identical at any shard count.
	base := SingleSpec{
		Shape:      geom.MustShape(4, 4),
		Events:     []inject.Event{{Cycle: 18, Fault: fault.RouterFault(geom.Coord{2, 1})}},
		Pattern:    Shift(5),
		Waves:      3,
		Gap:        16,
		Inject:     inject.Options{Retransmit: true, RetryAfter: 48},
		Recovery:   recovery.Options{Enabled: true},
		Broadcasts: []Broadcast{{Cycle: 30, Src: geom.Coord{0, 3}}},
	}
	render := func(shards int) string {
		var b strings.Builder
		spec := base
		spec.Shards = shards
		if _, err := RunSingle(spec, &b); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return b.String()
	}
	ref := render(0)
	for _, shards := range []int{2, 3, 4} {
		if got := render(shards); got != ref {
			t.Errorf("shards=%d report differs from serial:\n--- serial ---\n%s--- shards=%d ---\n%s", shards, ref, shards, got)
		}
	}
}
