package campaign

// Adversarial wall for the escape-VC machine at the campaign layer. Two
// claims are locked down here, where the recovery supervisor is actually
// wired in (RunCell/RunSingle arm it; the core tests cannot see it):
//
//   - Liveness under contention: an adaptive machine driven with the most
//     cycle-prone traffic we have — full-reversal permutation, deep packets,
//     waves packed close, a hair-trigger recovery supervisor armed — drains
//     with exactly-once delivery and ZERO recovery interventions. Deadlock
//     freedom comes from the certified escape channel, never from sacrifice.
//
//   - Degenerate-lane equivalence: VCs=1 is byte-identical to the pre-VC
//     machine in every artifact a user can observe — campaign reports,
//     single-run report streams, outcomes — at every parallel and shard
//     level. The VC layer is provably inert until a second lane exists.

import (
	"bytes"
	"fmt"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/recovery"
)

// adaptiveContention is the adversarial adaptive cell: a 4x4 two-lane
// machine under full-reversal traffic with deep packets and tightly packed
// waves, so adaptive lanes fight over every productive output. The recovery
// supervisor is armed with a stall threshold far below the drain time — if
// the escape argument ever broke, it would fire and the test would see the
// sacrifice in Recoveries.
func adaptiveContention(faulted bool) Spec {
	sp := Spec{
		Shape:          geom.MustShape(4, 4),
		Pattern:        Reverse(),
		Waves:          6,
		Gap:            4,
		PacketSize:     48,
		VCs:            2,
		Adaptive:       true,
		Inject:         inject.Options{Retransmit: true, RetryAfter: 64, StallThreshold: 512},
		Recovery:       recovery.Options{Enabled: true, StallThreshold: 64},
		KeepDeliveries: true,
		Horizon:        30_000,
	}
	if faulted {
		sp.Preset = []fault.Fault{fault.RouterFault(geom.Coord{2, 1})}
		sp.Broadcasts = []Broadcast{{Cycle: 8, Src: geom.Coord{3, 2}, Size: 24}}
	}
	return sp
}

// countAdaptive counts deliveries that took at least one non-escape hop.
func countAdaptive(c CellResult) int {
	n := 0
	for _, d := range c.Deliveries {
		if d.Adaptive {
			n++
		}
	}
	return n
}

// TestAdaptiveContentionNeverRecovers is the liveness half of the escape-VC
// argument, tested adversarially: maximum lane contention, a hair-trigger
// supervisor, and (in the faulted variant) the Fig. 9 fault plus a crossing
// broadcast. Every variant must drain exactly-once with zero recoveries,
// and the adaptive lanes must demonstrably carry traffic — a run that
// quietly collapsed onto the escape lane proves nothing.
func TestAdaptiveContentionNeverRecovers(t *testing.T) {
	for _, tc := range []struct {
		name    string
		faulted bool
	}{
		{"fault-free", false},
		{"fig9-fault-and-broadcast", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := RunCell(adaptiveContention(tc.faulted))
			if err != nil {
				t.Fatal(err)
			}
			if !c.Drained || c.Deadlocked || c.Stalled || c.Livelocked {
				t.Fatalf("adaptive machine wedged: drained=%v deadlocked=%v stalled=%v livelocked=%v (end cycle %d)",
					c.Drained, c.Deadlocked, c.Stalled, c.Livelocked, c.EndCycle)
			}
			if c.Recoveries != 0 {
				t.Fatalf("supervisor fired %d time(s) — the escape channel did not keep the machine live", c.Recoveries)
			}
			st := c.Stats
			if st.Duplicates != 0 || st.LostExhausted != 0 || st.LostUntraceable != 0 || st.DropsOther != 0 {
				t.Fatalf("loss accounting dirty: %+v", st)
			}
			if c.Delivered != c.Accepted {
				t.Fatalf("exactly-once broken: delivered %d of %d accepted", c.Delivered, c.Accepted)
			}
			if c.BroadcastCopies != c.BroadcastCopiesExpected {
				t.Fatalf("broadcast fan incomplete: %d of %d copies", c.BroadcastCopies, c.BroadcastCopiesExpected)
			}
			if n := countAdaptive(c); n == 0 {
				t.Fatal("no delivery took an adaptive lane — the contention fixture degenerated to escape-only")
			} else {
				t.Logf("%d of %d deliveries took an adaptive lane; drained at cycle %d, 0 recoveries", n, c.Delivered, c.EndCycle)
			}
		})
	}
}

// TestSingleLaneCampaignBytesIdentical pins the degenerate-lane guarantee on
// the campaign artifact itself: the recovery sweep's full report with
// VCs=1 must match the pre-VC (VCs=0) report byte for byte, at serial and
// parallel execution and with the cell machines sharded.
func TestSingleLaneCampaignBytesIdentical(t *testing.T) {
	base, err := Run(recoveryCampaign(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		parallel int
		shards   int
	}{
		{"serial", 1, 0},
		{"parallel-2", 2, 0},
		{"serial-sharded-2", 1, 2},
		{"parallel-2-sharded-3", 2, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := recoveryCampaign(tc.parallel)
			cfg.VCs = 1
			cfg.Shards = tc.shards
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != base.String() {
				t.Errorf("VCs=1 report differs from pre-VC baseline\n--- vcs=1 (%s)\n%s--- baseline\n%s",
					tc.name, got.String(), base.String())
			}
		})
	}
}

// TestSingleLaneSingleRunBytesIdentical does the same for the single-run
// report stream — the artifact mdxfault -single prints — including the
// recovery narrative of the deadlocking Fig. 9 design, across shard counts.
func TestSingleLaneSingleRunBytesIdentical(t *testing.T) {
	for _, separate := range []bool{false, true} {
		var want bytes.Buffer
		wantOut, err := RunSingle(fig9Single(separate, 0), &want)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{0, 3} {
			spec := fig9Single(separate, 0)
			spec.VCs = 1
			spec.Shards = shards
			var got bytes.Buffer
			gotOut, err := RunSingle(spec, &got)
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != want.String() {
				t.Errorf("separate=%v shards=%d: VCs=1 report differs\n--- vcs=1\n%s--- baseline\n%s",
					separate, shards, got.String(), want.String())
			}
			if fmt.Sprintf("%+v", gotOut) != fmt.Sprintf("%+v", wantOut) {
				t.Errorf("separate=%v shards=%d: outcome differs: %+v != %+v", separate, shards, gotOut, wantOut)
			}
		}
	}
}

// TestAdaptiveCampaignParallelShardInvariant extends the determinism pin to
// the adaptive machine: the adaptive recovery sweep renders byte-identically
// at every parallel and shard level. (The adaptive sweep differs from the
// static one — lanes change drain times — so it is compared against its own
// serial rendering, not the static baseline.)
func TestAdaptiveCampaignParallelShardInvariant(t *testing.T) {
	adaptive := func(parallel, shards int) Config {
		cfg := recoveryCampaign(parallel)
		cfg.DXBSeparate = false
		cfg.DXB = geom.Coord{}
		cfg.VCs = 2
		cfg.Adaptive = true
		cfg.Shards = shards
		return cfg
	}
	base, err := Run(adaptive(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if base.Recoveries() != 0 || base.Deadlocks() != 0 || base.Livelocked() != 0 {
		t.Fatalf("adaptive sweep not clean: recoveries=%d deadlocks=%d livelocked=%d\n%s",
			base.Recoveries(), base.Deadlocks(), base.Livelocked(), base.String())
	}
	for _, tc := range []struct{ parallel, shards int }{{4, 0}, {1, 2}, {2, 3}} {
		got, err := Run(adaptive(tc.parallel, tc.shards))
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != base.String() {
			t.Errorf("parallel=%d shards=%d: adaptive report differs from serial\n--- got\n%s--- serial\n%s",
				tc.parallel, tc.shards, got.String(), base.String())
		}
	}
}
