package campaign

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/recovery"
)

// fig9Single is the paper's Fig. 9 deadlocking configuration as a
// single-schedule spec: a separate-DXB 4x4 machine with a pre-set router
// fault, one detoured unicast, and a broadcast crossing it.
func fig9Single(separate bool, broadcastAt int64) SingleSpec {
	return SingleSpec{
		Shape:       geom.MustShape(4, 4),
		SXB:         geom.Coord{0, 0},
		DXB:         geom.Coord{0, 3},
		DXBSeparate: separate,
		Preset:      []fault.Fault{fault.RouterFault(geom.Coord{2, 1})},
		Pattern:     Pair(geom.Coord{0, 1}, geom.Coord{2, 2}, 2),
		Waves:       1,
		Gap:         1,
		PacketSize:  24,
		Broadcasts:  []Broadcast{{Cycle: broadcastAt, Src: geom.Coord{3, 2}, Size: 24}},
		Inject:      inject.Options{Retransmit: true, RetryAfter: 32, StallThreshold: 256},
		Recovery:    recovery.Options{Enabled: true, StallThreshold: 256},
	}
}

// TestSingleRunFig9Recovered runs the deadlocking design to completion under
// recovery and checks the report carries the recovery narrative.
func TestSingleRunFig9Recovered(t *testing.T) {
	var buf bytes.Buffer
	spec := fig9Single(true, 0)
	out, err := RunSingle(spec, &buf)
	if err != nil {
		t.Fatal(err)
	}
	report := buf.String()
	if !out.Drained || out.Deadlocked || out.Stalled {
		t.Fatalf("fig9 did not drain under recovery: %+v\n%s", out, report)
	}
	for _, want := range []string{
		"recovery: enabled (stall-threshold=256",
		"recovery @ cycle",
		"victim",
		"retransmit scheduled",
		"recoveries: 1",
		"outcome: drained",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "LIVELOCK") {
		t.Fatalf("unexpected livelock:\n%s", report)
	}
}

// TestSingleRunDeadlockFreeDesignNoRecoveries runs the identical workload on
// the unified D-XB = S-XB design: recovery is armed but must never fire.
func TestSingleRunDeadlockFreeDesignNoRecoveries(t *testing.T) {
	var buf bytes.Buffer
	out, err := RunSingle(fig9Single(false, 0), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Drained {
		t.Fatalf("unified design did not drain: %+v\n%s", out, buf.String())
	}
	if !strings.Contains(buf.String(), "recoveries: 0") {
		t.Fatalf("deadlock-free design recovered:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "recovery @ cycle") {
		t.Fatalf("unexpected recovery event on deadlock-free design:\n%s", buf.String())
	}
}

// TestSingleRunRecoveryResumeByteIdentical snapshots the fig9 run mid-recovery
// — after the victim purge, before the retransmission lands — and checks the
// resumed report stream (including the re-rendered recovery line) is
// byte-identical to the uninterrupted run.
func TestSingleRunRecoveryResumeByteIdentical(t *testing.T) {
	spec := fig9Single(true, 0)
	var want bytes.Buffer
	wantOut, err := RunSingle(spec, &want)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(want.String(), "recovery @ cycle") {
		t.Fatalf("fixture too tame — no recovery to interrupt:\n%s", want.String())
	}

	var junk bytes.Buffer
	r, err := NewSingleRun(spec, &junk)
	if err != nil {
		t.Fatal(err)
	}
	for r.Recoveries() == 0 {
		if r.Step() {
			t.Fatalf("run finished at cycle %d without a recovery", r.Cycle())
		}
	}
	// A few cycles into the post-purge window: the victim is purged and its
	// retransmission is scheduled but not yet re-sent.
	for i := 0; i < 4; i++ {
		if r.Step() {
			t.Fatalf("run finished at cycle %d, inside the recovery window", r.Cycle())
		}
	}
	snap := r.Snapshot()

	var got bytes.Buffer
	r2, err := NewSingleRun(spec, &got)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	for !r2.Step() {
	}
	gotOut, err := r2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("resumed report differs\n--- resumed\n%s--- uninterrupted\n%s", got.String(), want.String())
	}
	if fmt.Sprintf("%+v", gotOut) != fmt.Sprintf("%+v", wantOut) {
		t.Errorf("outcome differs: %+v != %+v", gotOut, wantOut)
	}
}

// recoveryCampaign is the fig9 scenario swept as a full campaign: every
// placement of a *second* fault on top of the preset one.
func recoveryCampaign(parallel int) Config {
	return Config{
		Shape:       geom.MustShape(4, 4),
		SXB:         geom.Coord{0, 0},
		DXB:         geom.Coord{0, 3},
		DXBSeparate: true,
		Preset:      []fault.Fault{fault.RouterFault(geom.Coord{2, 1})},
		Epochs:      []int64{40},
		Patterns:    []Pattern{Pair(geom.Coord{0, 1}, geom.Coord{2, 2}, 2)},
		Waves:       2,
		Gap:         30,
		PacketSize:  24,
		Broadcasts:  []Broadcast{{Cycle: 0, Src: geom.Coord{3, 2}, Size: 24}},
		Inject:      inject.Options{Retransmit: true, RetryAfter: 32, StallThreshold: 256},
		Recovery:    recovery.Options{Enabled: true, StallThreshold: 256},
		Horizon:     20_000,
		Parallel:    parallel,
	}
}

// TestRecoveryCampaignGracefulAndByteIdentical sweeps a second fault over the
// fig9 scenario under recovery: no cell may wedge silently, the per-pair
// reachability classification must predict every refusal, exactly-once
// accounting must balance, and the whole report must be byte-identical at
// -parallel 1 and 4.
func TestRecoveryCampaignGracefulAndByteIdentical(t *testing.T) {
	serial, err := Run(recoveryCampaign(1))
	if err != nil {
		t.Fatal(err)
	}
	// The preset fault occupies one router placement, so the grid covers
	// every placement except it.
	if got, want := len(serial.Cells), 16+8-1; got != want {
		t.Fatalf("cells = %d, want %d", got, want)
	}
	if serial.Recoveries() == 0 {
		t.Fatalf("no cell recovered — fixture lost its deadlock:\n%s", serial.String())
	}
	if serial.Livelocked() != 0 {
		t.Fatalf("livelocked cells:\n%s", serial.String())
	}
	for _, c := range serial.Cells {
		if c.Stalled && !c.Deadlocked {
			t.Errorf("cell %v@%d: wedged without a wait cycle", c.Fault, c.Epoch)
		}
		if c.Deadlocked {
			t.Errorf("cell %v@%d: unrecovered deadlock", c.Fault, c.Epoch)
		}
		if !c.UnreachableAsPredicted {
			t.Errorf("cell %v@%d: refusals unpredicted (refused=%d, source-dead=%d dest-dead=%d unreachable=%d)",
				c.Fault, c.Epoch, c.Refused, c.SourceDeadPairs, c.DestDeadPairs, c.UnreachablePairs)
		}
		if c.Stats.Duplicates != 0 {
			t.Errorf("cell %v@%d: duplicates %+v", c.Fault, c.Epoch, c.Stats)
		}
		// Exactly-once on the unicast pool: DropsOther is broadcast copies
		// the second fault killed in flight — they never entered Accepted.
		st := c.Stats
		final := st.LostUnreachable + st.LostExhausted + st.LostUntraceable
		if c.Drained && c.Delivered+final != c.Accepted {
			t.Errorf("cell %v@%d: exactly-once accounting delivered=%d + final=%d != accepted=%d",
				c.Fault, c.Epoch, c.Delivered, final, c.Accepted)
		}
		if c.BroadcastCopies+st.DropsOther > c.BroadcastCopiesExpected {
			t.Errorf("cell %v@%d: broadcast copies %d + dropped %d exceed expected %d",
				c.Fault, c.Epoch, c.BroadcastCopies, st.DropsOther, c.BroadcastCopiesExpected)
		}
	}
	if !strings.Contains(serial.String(), "dl-recov") {
		t.Fatalf("table missing recovery column:\n%s", serial.String())
	}

	for _, p := range []int{2, 4} {
		again, err := Run(recoveryCampaign(p))
		if err != nil {
			t.Fatal(err)
		}
		if again.String() != serial.String() {
			t.Errorf("parallel=%d report differs from serial\n--- parallel\n%s--- serial\n%s",
				p, again.String(), serial.String())
		}
	}
}

// TestRecoveryCampaignUnifiedDesignZero runs the same sweep on the unified
// D-XB = S-XB design: the deadlock-free guarantee means zero recoveries
// across every cell.
func TestRecoveryCampaignUnifiedDesignZero(t *testing.T) {
	cfg := recoveryCampaign(4)
	cfg.DXBSeparate = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries() != 0 || res.Livelocked() != 0 {
		t.Fatalf("deadlock-free design recovered: recoveries=%d livelocked=%d\n%s",
			res.Recoveries(), res.Livelocked(), res.String())
	}
	if res.Deadlocks() != 0 {
		t.Fatalf("deadlock on unified design:\n%s", res.String())
	}
}

// TestParsePatternPair pins the pair:SRC>DST syntax round-trip and its error
// paths.
func TestParsePatternPair(t *testing.T) {
	p, err := ParsePattern("pair:0,1>2,2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "pair:0,1>2,2" {
		t.Fatalf("round-trip name = %q", p.Name)
	}
	shape := geom.MustShape(4, 4)
	if got := p.Dest(shape, geom.Coord{0, 1}); got != (geom.Coord{2, 2}) {
		t.Fatalf("pair source routes to %v", got)
	}
	if got := p.Dest(shape, geom.Coord{3, 3}); got != (geom.Coord{3, 3}) {
		t.Fatalf("pair bystander routes to %v (want itself)", got)
	}
	for _, bad := range []string{
		"pair:", "pair:0,1", "pair:0,1>", "pair:0,1>2,2>3,3",
		"pair:x,1>2,2", "pair:0,1>2", "pair:-1,1>2,2", "pair:0,1>0,1",
	} {
		if _, err := ParsePattern(bad); err == nil {
			t.Errorf("ParsePattern(%q) accepted", bad)
		}
	}
}
