package campaign

import (
	"strings"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
)

func TestPlacementsEnumeratesEverything(t *testing.T) {
	shape := geom.MustShape(4, 3)
	got := Placements(shape)
	want := shape.Size() + len(shape.Lines()) // 12 routers + 7 lines
	if len(got) != want {
		t.Fatalf("placements = %d, want %d", len(got), want)
	}
	routers, xbs := 0, 0
	for _, f := range got {
		if f.Kind == fault.KindRouter {
			routers++
		} else {
			xbs++
		}
	}
	if routers != shape.Size() || xbs != len(shape.Lines()) {
		t.Fatalf("placements split %d routers / %d crossbars", routers, xbs)
	}
}

func TestRunCellVerdict(t *testing.T) {
	res, err := RunCell(Spec{
		Shape:   geom.MustShape(4, 4),
		Events:  []inject.Event{{Cycle: 12, Fault: fault.RouterFault(geom.Coord{2, 1})}},
		Pattern: Shift(5),
		Waves:   4,
		Gap:     24,
		Inject:  inject.Options{Retransmit: true, RetryAfter: 32, StallThreshold: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained || res.Deadlocked || res.Stalled {
		t.Fatalf("cell did not drain cleanly: %+v", res)
	}
	if res.Offered == 0 || res.Accepted == 0 {
		t.Fatalf("no traffic offered: %+v", res)
	}
	if res.RefusedOther != 0 {
		t.Fatalf("non-unreachable refusals: %+v", res)
	}
	if !res.UnreachableAsPredicted {
		t.Fatalf("refusals do not match static prediction: refused=%d predicted=%d/wave x %d waves",
			res.Refused, res.PredictedUnreachablePerWave, res.WavesAfterFault)
	}
	if res.WavesAfterFault != 3 {
		t.Fatalf("waves after cycle-12 fault = %d, want 3", res.WavesAfterFault)
	}
	st := res.Stats
	final := st.LostUnreachable + st.LostExhausted + st.LostUntraceable + st.DropsOther
	if res.Delivered+final != res.Accepted {
		t.Fatalf("exactly-once accounting: delivered=%d + final=%d != accepted=%d (%+v)",
			res.Delivered, final, res.Accepted, st)
	}
	if st.Duplicates != 0 {
		t.Fatalf("duplicates: %+v", st)
	}
	if av := res.Availability(); av <= 0 || av > 1 {
		t.Fatalf("availability = %v", av)
	}
}

func TestRunCellKeepsDeliveriesOnRequest(t *testing.T) {
	spec := Spec{
		Shape:   geom.MustShape(3, 3),
		Events:  []inject.Event{{Cycle: 8, Fault: fault.RouterFault(geom.Coord{1, 1})}},
		Pattern: Shift(2),
		Waves:   2,
		Gap:     16,
		Inject:  inject.Options{StallThreshold: 128},
	}
	lean, err := RunCell(spec)
	if err != nil {
		t.Fatal(err)
	}
	if lean.Deliveries != nil {
		t.Fatal("deliveries retained without KeepDeliveries")
	}
	spec.KeepDeliveries = true
	full, err := RunCell(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Deliveries) != full.Delivered {
		t.Fatalf("kept %d deliveries, counted %d", len(full.Deliveries), full.Delivered)
	}
}

func smallCampaign(parallel int) Config {
	return Config{
		Shape:    geom.MustShape(3, 3),
		Epochs:   []int64{10},
		Patterns: []Pattern{Shift(2)},
		Waves:    3,
		Gap:      20,
		Inject:   inject.Options{Retransmit: true, RetryAfter: 24, StallThreshold: 128},
		Parallel: parallel,
	}
}

func TestCampaignZeroDeadlocksAndByteIdentical(t *testing.T) {
	serial, err := Run(smallCampaign(1))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(serial.Cells), (9+6)*1*1; got != want {
		t.Fatalf("cells = %d, want %d", got, want)
	}
	if serial.Deadlocks() != 0 || serial.Stalls() != 0 || serial.undrained() != 0 {
		t.Fatalf("campaign not clean:\n%s", serial.String())
	}
	for _, c := range serial.Cells {
		if !c.UnreachableAsPredicted {
			t.Errorf("cell %v@%d/%s: refusals unpredicted (refused=%d predicted=%d x %d)",
				c.Fault, c.Epoch, c.Pattern, c.Refused, c.PredictedUnreachablePerWave, c.WavesAfterFault)
		}
		if c.Stats.Duplicates != 0 {
			t.Errorf("cell %v: duplicates %+v", c.Fault, c.Stats)
		}
	}
	want := serial.String()
	if !strings.Contains(want, "rtc") || !strings.Contains(want, "xb-dim1") {
		t.Fatalf("table missing fault classes:\n%s", want)
	}
	// Byte-identity across parallelism and across repeats.
	for _, p := range []int{1, 2, 4} {
		again, err := Run(smallCampaign(p))
		if err != nil {
			t.Fatal(err)
		}
		if got := again.String(); got != want {
			t.Errorf("parallel=%d output differs:\n--- serial ---\n%s\n--- parallel ---\n%s", p, want, got)
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Shape: geom.MustShape(3, 3)}); err == nil {
		t.Error("config without epochs accepted")
	}
	if _, err := Run(Config{Shape: geom.MustShape(3, 3), Epochs: []int64{1}}); err == nil {
		t.Error("config without patterns accepted")
	}
	if _, err := RunCell(Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
}
