package campaign

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
)

func resumeSpec() Spec {
	return Spec{
		Shape:   geom.MustShape(4, 4),
		Events:  []inject.Event{{Cycle: 12, Fault: fault.RouterFault(geom.Coord{2, 1})}},
		Pattern: Shift(5),
		Waves:   4,
		Gap:     24,
		Inject:  inject.Options{Retransmit: true, RetryAfter: 32, StallThreshold: 128},
	}
}

// TestCellRunResumeEquivalence interrupts a cell at several cycles and
// checks the resumed verdict matches the uninterrupted one exactly.
func TestCellRunResumeEquivalence(t *testing.T) {
	spec := resumeSpec()
	want, err := RunCell(spec)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int64{0, 12, 13, 40, 90} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			c, err := NewCellRun(spec)
			if err != nil {
				t.Fatal(err)
			}
			for c.Cycle() < k {
				if c.Step() {
					t.Fatalf("cell finished at cycle %d before snapshot point %d", c.Cycle(), k)
				}
			}
			snap := c.Snapshot()

			c2, err := NewCellRun(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := c2.Restore(snap); err != nil {
				t.Fatalf("restore: %v", err)
			}
			for !c2.Step() {
			}
			got, err := c2.Result()
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
				t.Errorf("resumed verdict differs\n--- resumed\n%+v\n--- uninterrupted\n%+v", got, want)
			}
		})
	}
}

// TestSingleRunResumeByteIdentical interrupts RunSingle's stepper mid-run —
// including inside the casualty-reporting window — and checks the resumed
// report stream is byte-identical to the uninterrupted one.
func TestSingleRunResumeByteIdentical(t *testing.T) {
	spec := SingleSpec{
		Shape:   geom.MustShape(4, 4),
		Events:  []inject.Event{{Cycle: 12, Fault: fault.RouterFault(geom.Coord{2, 1})}},
		Pattern: Shift(5),
		Waves:   4,
		Gap:     24,
		Inject:  inject.Options{Retransmit: true, RetryAfter: 32, StallThreshold: 128},
	}
	var want bytes.Buffer
	wantOut, err := RunSingle(spec, &want)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(want.String(), "killed in flight") {
		t.Fatalf("fixture too tame — no casualty lines to re-render:\n%s", want.String())
	}

	for _, k := range []int64{0, 13, 40} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			var junk bytes.Buffer
			r, err := NewSingleRun(spec, &junk)
			if err != nil {
				t.Fatal(err)
			}
			for r.Cycle() < k {
				if r.Step() {
					t.Fatalf("run finished before snapshot point %d", k)
				}
			}
			snap := r.Snapshot()

			var got bytes.Buffer
			r2, err := NewSingleRun(spec, &got)
			if err != nil {
				t.Fatal(err)
			}
			if err := r2.Restore(snap); err != nil {
				t.Fatalf("restore: %v", err)
			}
			for !r2.Step() {
			}
			gotOut, err := r2.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != want.String() {
				t.Errorf("resumed report differs\n--- resumed\n%s--- uninterrupted\n%s", got.String(), want.String())
			}
			if fmt.Sprintf("%+v", gotOut) != fmt.Sprintf("%+v", wantOut) {
				t.Errorf("outcome differs: %+v != %+v", gotOut, wantOut)
			}
		})
	}
}

// TestCampaignStoreResume cancels a stored campaign partway, then re-runs it
// to completion and checks (a) the output matches the uninterrupted run at
// several parallelism levels, (b) completed cells were not re-run.
func TestCampaignStoreResume(t *testing.T) {
	base := smallCampaign(1)
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	for _, parallel := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallel=%d", parallel), func(t *testing.T) {
			dir := t.TempDir()
			store, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}

			// First attempt: cancel after a few cells complete. OnCell fires
			// from concurrent sweep workers, so the counters must be atomic.
			ctx, cancel := context.WithCancel(context.Background())
			var cells atomic.Int64
			cfg := smallCampaign(parallel)
			cfg.Store = store
			cfg.CheckpointEvery = 32
			cfg.Ctx = ctx
			cfg.OnCell = func(int64) {
				if cells.Add(1) == 4 {
					cancel()
				}
			}
			if _, err := Run(cfg); err == nil {
				t.Fatal("cancelled campaign unexpectedly completed")
			}
			results := countFiles(t, dir, ".result")
			if results == 0 {
				t.Fatal("no cell results persisted before cancellation")
			}

			// Second attempt: poison the already-completed cells' inputs by
			// counting re-runs — a skipped cell must come from the store.
			cfg2 := smallCampaign(parallel)
			cfg2.Store = store
			cfg2.CheckpointEvery = 32
			var reran atomic.Int64
			cfg2.OnCell = func(int64) { reran.Add(1) }
			got, err := Run(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != want.String() {
				t.Errorf("resumed campaign differs\n--- resumed\n%s--- uninterrupted\n%s", got.String(), want.String())
			}
			if int(reran.Load()) != len(want.Cells) {
				t.Errorf("OnCell fired %d times, want %d", reran.Load(), len(want.Cells))
			}
			if countFiles(t, dir, ".snap") != 0 {
				t.Errorf("stale snapshots left after completion")
			}
			if countFiles(t, dir, ".result") != len(want.Cells) {
				t.Errorf("persisted %d results, want %d", countFiles(t, dir, ".result"), len(want.Cells))
			}
		})
	}
}

// TestCellRunRestoreRejectsMismatchedSpec pins the cell-level spec guards.
func TestCellRunRestoreRejectsMismatchedSpec(t *testing.T) {
	spec := resumeSpec()
	c, err := NewCellRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c.Step()
	}
	snap := c.Snapshot()

	for name, alt := range map[string]Spec{
		"waves":   {Shape: spec.Shape, Events: spec.Events, Pattern: spec.Pattern, Waves: 5, Gap: spec.Gap, Inject: spec.Inject},
		"gap":     {Shape: spec.Shape, Events: spec.Events, Pattern: spec.Pattern, Waves: spec.Waves, Gap: 25, Inject: spec.Inject},
		"pattern": {Shape: spec.Shape, Events: spec.Events, Pattern: Reverse(), Waves: spec.Waves, Gap: spec.Gap, Inject: spec.Inject},
	} {
		c2, err := NewCellRun(alt)
		if err != nil {
			t.Fatal(err)
		}
		if err := c2.Restore(snap); err == nil {
			t.Errorf("%s: restore under mismatched spec unexpectedly succeeded", name)
		}
	}
}

func countFiles(t *testing.T, dir, suffix string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == suffix {
			n++
		}
	}
	return n
}
