package campaign

// Checkpoint support for campaign cells: a CellRun serializes its machine,
// injector, watchdog and wave-loop counters into one container, and a
// CellResult serializes on its own so completed cells survive a crash
// without re-running. Both ride the internal/checkpoint v1 format.

import (
	"fmt"

	"sr2201/internal/checkpoint"
	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/reconfig"
	"sr2201/internal/recovery"
)

const (
	secCell       = "campaign.cell"
	secCellResult = "campaign.result"
	secSingle     = "campaign.single"
)

// EncodeState appends the single-run loop state plus its machine's,
// injector's and watchdog's sections.
func (r *SingleRun) EncodeState(w *checkpoint.Writer) {
	r.m.EncodeState(w)
	r.inj.EncodeState(w)
	e := w.Section(secSingle)
	e.Uint(workloadHash(r.spec.Preset, r.spec.Broadcasts))
	e.String(r.spec.Pattern.Name)
	e.Int(int64(r.spec.Waves))
	e.Int(r.spec.Gap)
	e.Int(r.spec.Horizon)
	r.wd.EncodeState(e)
	e.Int(int64(r.offered))
	e.Int(int64(r.accepted))
	e.Int(int64(r.refused))
	e.Int(int64(r.bcasts))
	e.Int(int64(r.bcastsRefused))
	e.Int(int64(r.bcastCopiesExpected))
	e.Int(int64(r.reported))
	e.Int(int64(r.reportedRecov))
	e.Int(int64(r.wave))
	e.Int(int64(r.bNext))
	e.Bool(r.outcome.Drained)
	e.Bool(r.outcome.Stalled)
	e.Bool(r.outcome.Deadlocked)
	e.Bool(r.livelocked)
	e.Bool(r.done)
	e.Int(int64(r.reportedReconfig)) // appended in format version 3
	if r.sup != nil {
		r.sup.EncodeState(w)
	}
	if r.mgr != nil {
		r.mgr.EncodeState(w)
	}
}

// Snapshot serializes the run into one container.
func (r *SingleRun) Snapshot() []byte {
	w := checkpoint.NewWriter()
	r.EncodeState(w)
	return w.Bytes()
}

// Restore replaces the run's state with a container produced by Snapshot on
// a run built from the same SingleSpec, then re-renders the already-reported
// casualty lines so the output stream continues byte-identically to the
// uninterrupted run. Call immediately after NewSingleRun (which printed the
// preamble), before any Step.
func (r *SingleRun) Restore(data []byte) error {
	rd, err := checkpoint.NewReader(data)
	if err != nil {
		return err
	}
	if err := r.m.DecodeState(rd); err != nil {
		return err
	}
	if err := r.inj.DecodeState(rd); err != nil {
		return err
	}
	d, err := rd.Section(secSingle)
	if err != nil {
		return err
	}
	if got, want := d.Uint(), workloadHash(r.spec.Preset, r.spec.Broadcasts); d.Err() == nil && got != want {
		return fmt.Errorf("checkpoint: section %q: workload fingerprint %016x does not match this run's %016x", secSingle, got, want)
	}
	if name := d.String(); d.Err() == nil && name != r.spec.Pattern.Name {
		return fmt.Errorf("checkpoint: section %q: pattern %q does not match this run's %q", secSingle, name, r.spec.Pattern.Name)
	}
	d.Expect(int64(r.spec.Waves), "single waves")
	d.Expect(r.spec.Gap, "single gap")
	d.Expect(r.spec.Horizon, "single horizon")
	r.wd.DecodeState(d)
	offered := d.IntAsInt()
	accepted := d.IntAsInt()
	refused := d.IntAsInt()
	bcasts := d.IntAsInt()
	bcastsRefused := d.IntAsInt()
	bcastCopiesExpected := d.IntAsInt()
	reported := d.IntAsInt()
	reportedRecov := d.IntAsInt()
	wave := d.IntAsInt()
	bNext := d.IntAsInt()
	drained := d.Bool()
	stalled := d.Bool()
	deadlocked := d.Bool()
	livelocked := d.Bool()
	done := d.Bool()
	reportedReconfig := 0
	if d.Version() >= 3 {
		reportedReconfig = d.IntAsInt()
	}
	if err := d.Finish(); err != nil {
		return err
	}
	if wave < 0 || wave > r.spec.Waves {
		return fmt.Errorf("checkpoint: section %q: wave %d outside [0,%d]", secSingle, wave, r.spec.Waves)
	}
	if bNext < 0 || bNext > len(r.spec.Broadcasts) {
		return fmt.Errorf("checkpoint: section %q: broadcast index %d outside schedule of %d", secSingle, bNext, len(r.spec.Broadcasts))
	}
	if reported < 0 || reported > len(r.inj.Casualties()) {
		return fmt.Errorf("checkpoint: section %q: reported %d outside casualty list of %d", secSingle, reported, len(r.inj.Casualties()))
	}
	if r.sup != nil {
		if err := r.sup.DecodeState(rd); err != nil {
			return err
		}
	}
	if r.mgr != nil {
		if err := r.mgr.DecodeState(rd); err != nil {
			return err
		}
	}
	maxRecov := 0
	if r.sup != nil {
		maxRecov = len(r.sup.Events())
	}
	if reportedRecov < 0 || reportedRecov > maxRecov {
		return fmt.Errorf("checkpoint: section %q: reported recoveries %d outside event list of %d", secSingle, reportedRecov, maxRecov)
	}
	maxReconfig := 0
	if r.mgr != nil {
		maxReconfig = len(r.mgr.Events())
	}
	if reportedReconfig < 0 || reportedReconfig > maxReconfig {
		return fmt.Errorf("checkpoint: section %q: reported reconfigurations %d outside event list of %d", secSingle, reportedReconfig, maxReconfig)
	}
	r.offered, r.accepted, r.refused = offered, accepted, refused
	r.bcasts, r.bcastsRefused, r.bcastCopiesExpected = bcasts, bcastsRefused, bcastCopiesExpected
	r.wave = wave
	r.bNext = bNext
	r.outcome.Drained, r.outcome.Stalled, r.outcome.Deadlocked = drained, stalled, deadlocked
	r.livelocked = livelocked
	r.done = done
	// Re-render the already-reported casualty, recovery and reconfiguration
	// lines in the order the uninterrupted run printed them. Each line class
	// prints at a known point of a known step: a recovery at engine cycle rc
	// prints *during* the step that ends at rc; a casualty recorded at cycle
	// cc prints at the end of the step that advanced cc -> cc+1; a
	// reconfiguration prints at the end of its trigger's step — the fault
	// trigger fires in PreCycle (event cycle X, step X -> X+1), the deadlock
	// trigger in PostCycle (event cycle X, step X-1 -> X). Sorting by
	// (step-end cycle, within-step position) reproduces the stream; each
	// source list is already chronological, so the merge is stable.
	cas := r.inj.Casualties()[:reported]
	var evs []recovery.Event
	if r.sup != nil {
		evs = r.sup.Events()[:reportedRecov]
	}
	var rcs []reconfig.Event
	if r.mgr != nil {
		rcs = r.mgr.Events()[:reportedReconfig]
	}
	// Within-step print order: recovery (during the step) = 0, casualty
	// loop = 1, reconfiguration loop = 2.
	recovKey := func(ev recovery.Event) [2]int64 { return [2]int64{ev.Cycle, 0} }
	casKey := func(c inject.Casualty) [2]int64 { return [2]int64{c.Cycle + 1, 1} }
	reconfigKey := func(ev reconfig.Event) [2]int64 {
		end := ev.Cycle
		if ev.Trigger == reconfig.TriggerFault {
			end++
		}
		return [2]int64{end, 2}
	}
	less := func(a, b [2]int64) bool { return a[0] < b[0] || (a[0] == b[0] && a[1] < b[1]) }
	r.reported, r.reportedRecov, r.reportedReconfig = 0, 0, 0
	for len(cas) > 0 || len(evs) > 0 || len(rcs) > 0 {
		best := 0 // 0 = recovery, 1 = casualty, 2 = reconfig
		var key [2]int64
		have := false
		if len(evs) > 0 {
			key, have = recovKey(evs[0]), true
		}
		if len(cas) > 0 && (!have || less(casKey(cas[0]), key)) {
			best, key, have = 1, casKey(cas[0]), true
		}
		if len(rcs) > 0 && (!have || less(reconfigKey(rcs[0]), key)) {
			best = 2
		}
		switch best {
		case 0:
			fmt.Fprintf(r.w, "%s\n", evs[0])
			evs = evs[1:]
			r.reportedRecov++
		case 1:
			r.printCasualty(cas[0])
			cas = cas[1:]
			r.reported++
		default:
			r.printReconfig(rcs[0])
			rcs = rcs[1:]
			r.reportedReconfig++
		}
	}
	return nil
}

// workloadHash digests the preset faults and the broadcast schedule, the
// spec inputs no other fingerprint covers (the machine hashes its config,
// the injector its event schedule).
func workloadHash(preset []fault.Fault, bcasts []Broadcast) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v int64) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime
			u >>= 8
		}
	}
	mix(int64(len(preset)))
	for _, f := range preset {
		mix(int64(f.Kind))
		for _, v := range f.Coord {
			mix(int64(v))
		}
		mix(int64(f.Line.Dim))
		for _, v := range f.Line.Fixed {
			mix(int64(v))
		}
		if f.Kind == fault.KindLink {
			for _, v := range f.To {
				mix(int64(v))
			}
		}
	}
	mix(int64(len(bcasts)))
	for _, b := range bcasts {
		mix(b.Cycle)
		for _, v := range b.Src {
			mix(int64(v))
		}
		mix(int64(b.Size))
	}
	return h
}

// EncodeState appends the cell's loop state plus its machine's, injector's
// and watchdog's sections.
func (c *CellRun) EncodeState(w *checkpoint.Writer) {
	c.m.EncodeState(w)
	c.inj.EncodeState(w)
	e := w.Section(secCell)
	// Spec guard: the machine and injector carry their own fingerprints;
	// these cover the wave-loop knobs they cannot see.
	e.Uint(workloadHash(c.spec.Preset, c.spec.Broadcasts))
	e.String(c.spec.Pattern.Name)
	e.Int(int64(c.spec.Waves))
	e.Int(c.spec.Gap)
	e.Int(c.spec.Horizon)
	e.Bool(c.spec.KeepDeliveries)
	c.wd.EncodeState(e)
	e.Int(int64(c.wave))
	e.Int(int64(c.bNext))
	e.Bool(c.done)
	for _, v := range []int{
		c.res.Offered, c.res.Accepted, c.res.Refused, c.res.RefusedOther,
		c.res.WavesAfterFault, c.res.Broadcasts, c.res.BroadcastsRefused,
		c.res.BroadcastCopiesExpected,
	} {
		e.Int(int64(v))
	}
	e.Bool(c.res.Stalled)
	e.Bool(c.res.Deadlocked)
	e.Bool(c.res.Livelocked)
	if c.sup != nil {
		c.sup.EncodeState(w)
	}
	if c.mgr != nil {
		c.mgr.EncodeState(w)
	}
}

// Snapshot serializes the cell into one container.
func (c *CellRun) Snapshot() []byte {
	w := checkpoint.NewWriter()
	c.EncodeState(w)
	return w.Bytes()
}

// DecodeState restores a container written by EncodeState into this cell,
// which must have been built with NewCellRun on the same Spec.
func (c *CellRun) DecodeState(r *checkpoint.Reader) error {
	if err := c.m.DecodeState(r); err != nil {
		return err
	}
	if err := c.inj.DecodeState(r); err != nil {
		return err
	}
	d, err := r.Section(secCell)
	if err != nil {
		return err
	}
	if got, want := d.Uint(), workloadHash(c.spec.Preset, c.spec.Broadcasts); d.Err() == nil && got != want {
		return fmt.Errorf("checkpoint: section %q: workload fingerprint %016x does not match this cell's %016x", secCell, got, want)
	}
	if name := d.String(); d.Err() == nil && name != c.spec.Pattern.Name {
		return fmt.Errorf("checkpoint: section %q: pattern %q does not match this cell's %q", secCell, name, c.spec.Pattern.Name)
	}
	d.Expect(int64(c.spec.Waves), "cell waves")
	d.Expect(c.spec.Gap, "cell gap")
	d.Expect(c.spec.Horizon, "cell horizon")
	if keep := d.Bool(); d.Err() == nil && keep != c.spec.KeepDeliveries {
		return fmt.Errorf("checkpoint: section %q: KeepDeliveries %v does not match this cell's %v", secCell, keep, c.spec.KeepDeliveries)
	}
	c.wd.DecodeState(d)
	wave := d.IntAsInt()
	bNext := d.IntAsInt()
	done := d.Bool()
	var counters [8]int
	for i := range counters {
		counters[i] = d.IntAsInt()
	}
	stalled := d.Bool()
	deadlocked := d.Bool()
	livelocked := d.Bool()
	if err := d.Finish(); err != nil {
		return err
	}
	if wave < 0 || wave > c.spec.Waves {
		return fmt.Errorf("checkpoint: section %q: wave %d outside [0,%d]", secCell, wave, c.spec.Waves)
	}
	if bNext < 0 || bNext > len(c.spec.Broadcasts) {
		return fmt.Errorf("checkpoint: section %q: broadcast index %d outside schedule of %d", secCell, bNext, len(c.spec.Broadcasts))
	}
	if c.sup != nil {
		if err := c.sup.DecodeState(r); err != nil {
			return err
		}
	}
	if c.mgr != nil {
		if err := c.mgr.DecodeState(r); err != nil {
			return err
		}
	}
	c.wave = wave
	c.bNext = bNext
	c.done = done
	c.res.Offered = counters[0]
	c.res.Accepted = counters[1]
	c.res.Refused = counters[2]
	c.res.RefusedOther = counters[3]
	c.res.WavesAfterFault = counters[4]
	c.res.Broadcasts = counters[5]
	c.res.BroadcastsRefused = counters[6]
	c.res.BroadcastCopiesExpected = counters[7]
	c.res.Stalled = stalled
	c.res.Deadlocked = deadlocked
	c.res.Livelocked = livelocked
	return nil
}

// Restore replaces the cell's state with a container produced by Snapshot
// on a cell built from the same Spec.
func (c *CellRun) Restore(data []byte) error {
	r, err := checkpoint.NewReader(data)
	if err != nil {
		return err
	}
	return c.DecodeState(r)
}

// EncodeResult serializes one completed cell verdict into its own container
// (the Store's cell-NNNN.result files).
func EncodeResult(res CellResult) []byte {
	w := checkpoint.NewWriter()
	e := w.Section(secCellResult)
	fault.EncodeFault(e, res.Fault)
	e.Int(res.Epoch)
	e.String(res.Pattern)
	for _, v := range []int{
		res.Offered, res.Accepted, res.Refused, res.RefusedOther,
		res.Delivered, res.PredictedUnreachablePerWave, res.WavesAfterFault,
		res.Broadcasts, res.BroadcastsRefused, res.BroadcastCopiesExpected,
		res.BroadcastCopies, res.Recoveries,
		res.SourceDeadPairs, res.DestDeadPairs, res.UnreachablePairs,
	} {
		e.Int(int64(v))
	}
	for _, v := range []int{
		res.Stats.EventsApplied, res.Stats.KilledInFlight, res.Stats.DropsEnRoute,
		res.Stats.DropsOther, res.Stats.Retransmits, res.Stats.Recovered,
		res.Stats.Duplicates, res.Stats.LostUnreachable, res.Stats.LostExhausted,
		res.Stats.LostUntraceable, res.Stats.Victims,
	} {
		e.Int(int64(v))
	}
	e.Bool(res.UnreachableAsPredicted)
	e.Bool(res.Drained)
	e.Bool(res.Stalled)
	e.Bool(res.Deadlocked)
	e.Bool(res.Livelocked)
	e.Int(res.EndCycle)
	e.Uint(uint64(len(res.Deliveries)))
	for _, d := range res.Deliveries {
		e.Uint(d.PacketID)
		geom.EncodeCoord(e, d.Src)
		geom.EncodeCoord(e, d.At)
		e.Bool(d.Broadcast)
		e.Bool(d.Detoured)
		e.Int(d.Cycle)
		e.Int(d.Latency)
	}
	// Appended in format version 3.
	e.Bool(res.ReconfigEnabled)
	e.Int(int64(res.Reconfigured))
	e.Int(int64(res.ReconfigDrained))
	e.Int(int64(res.ReconfigFellBack))
	return w.Bytes()
}

// DecodeResult reads a container written by EncodeResult.
func DecodeResult(data []byte) (CellResult, error) {
	var res CellResult
	r, err := checkpoint.NewReader(data)
	if err != nil {
		return res, err
	}
	d, err := r.Section(secCellResult)
	if err != nil {
		return res, err
	}
	res.Fault = fault.DecodeFault(d)
	res.Epoch = d.Int()
	res.Pattern = d.String()
	for _, p := range []*int{
		&res.Offered, &res.Accepted, &res.Refused, &res.RefusedOther,
		&res.Delivered, &res.PredictedUnreachablePerWave, &res.WavesAfterFault,
		&res.Broadcasts, &res.BroadcastsRefused, &res.BroadcastCopiesExpected,
		&res.BroadcastCopies, &res.Recoveries,
		&res.SourceDeadPairs, &res.DestDeadPairs, &res.UnreachablePairs,
	} {
		*p = d.IntAsInt()
	}
	for _, p := range []*int{
		&res.Stats.EventsApplied, &res.Stats.KilledInFlight, &res.Stats.DropsEnRoute,
		&res.Stats.DropsOther, &res.Stats.Retransmits, &res.Stats.Recovered,
		&res.Stats.Duplicates, &res.Stats.LostUnreachable, &res.Stats.LostExhausted,
		&res.Stats.LostUntraceable, &res.Stats.Victims,
	} {
		*p = d.IntAsInt()
	}
	res.UnreachableAsPredicted = d.Bool()
	res.Drained = d.Bool()
	res.Stalled = d.Bool()
	res.Deadlocked = d.Bool()
	res.Livelocked = d.Bool()
	res.EndCycle = d.Int()
	n := d.Len(8)
	for i := 0; i < n; i++ {
		var del core.Delivery
		del.PacketID = d.Uint()
		del.Src = geom.DecodeCoord(d)
		del.At = geom.DecodeCoord(d)
		del.Broadcast = d.Bool()
		del.Detoured = d.Bool()
		del.Cycle = d.Int()
		del.Latency = d.Int()
		res.Deliveries = append(res.Deliveries, del)
	}
	if d.Version() >= 3 {
		res.ReconfigEnabled = d.Bool()
		res.Reconfigured = d.IntAsInt()
		res.ReconfigDrained = d.IntAsInt()
		res.ReconfigFellBack = d.IntAsInt()
	}
	if err := d.Finish(); err != nil {
		return res, err
	}
	return res, nil
}
