package campaign

// Checkpoint support for campaign cells: a CellRun serializes its machine,
// injector, watchdog and wave-loop counters into one container, and a
// CellResult serializes on its own so completed cells survive a crash
// without re-running. Both ride the internal/checkpoint v1 format.

import (
	"fmt"

	"sr2201/internal/checkpoint"
	"sr2201/internal/core"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
)

const (
	secCell       = "campaign.cell"
	secCellResult = "campaign.result"
	secSingle     = "campaign.single"
)

// EncodeState appends the single-run loop state plus its machine's,
// injector's and watchdog's sections.
func (r *SingleRun) EncodeState(w *checkpoint.Writer) {
	r.m.EncodeState(w)
	r.inj.EncodeState(w)
	e := w.Section(secSingle)
	e.String(r.spec.Pattern.Name)
	e.Int(int64(r.spec.Waves))
	e.Int(r.spec.Gap)
	e.Int(r.spec.Horizon)
	r.wd.EncodeState(e)
	e.Int(int64(r.offered))
	e.Int(int64(r.accepted))
	e.Int(int64(r.refused))
	e.Int(int64(r.reported))
	e.Int(int64(r.wave))
	e.Bool(r.outcome.Drained)
	e.Bool(r.outcome.Stalled)
	e.Bool(r.outcome.Deadlocked)
	e.Bool(r.done)
}

// Snapshot serializes the run into one container.
func (r *SingleRun) Snapshot() []byte {
	w := checkpoint.NewWriter()
	r.EncodeState(w)
	return w.Bytes()
}

// Restore replaces the run's state with a container produced by Snapshot on
// a run built from the same SingleSpec, then re-renders the already-reported
// casualty lines so the output stream continues byte-identically to the
// uninterrupted run. Call immediately after NewSingleRun (which printed the
// preamble), before any Step.
func (r *SingleRun) Restore(data []byte) error {
	rd, err := checkpoint.NewReader(data)
	if err != nil {
		return err
	}
	if err := r.m.DecodeState(rd); err != nil {
		return err
	}
	if err := r.inj.DecodeState(rd); err != nil {
		return err
	}
	d, err := rd.Section(secSingle)
	if err != nil {
		return err
	}
	if name := d.String(); d.Err() == nil && name != r.spec.Pattern.Name {
		return fmt.Errorf("checkpoint: section %q: pattern %q does not match this run's %q", secSingle, name, r.spec.Pattern.Name)
	}
	d.Expect(int64(r.spec.Waves), "single waves")
	d.Expect(r.spec.Gap, "single gap")
	d.Expect(r.spec.Horizon, "single horizon")
	r.wd.DecodeState(d)
	offered := d.IntAsInt()
	accepted := d.IntAsInt()
	refused := d.IntAsInt()
	reported := d.IntAsInt()
	wave := d.IntAsInt()
	drained := d.Bool()
	stalled := d.Bool()
	deadlocked := d.Bool()
	done := d.Bool()
	if err := d.Finish(); err != nil {
		return err
	}
	if wave < 0 || wave > r.spec.Waves {
		return fmt.Errorf("checkpoint: section %q: wave %d outside [0,%d]", secSingle, wave, r.spec.Waves)
	}
	if reported < 0 || reported > len(r.inj.Casualties()) {
		return fmt.Errorf("checkpoint: section %q: reported %d outside casualty list of %d", secSingle, reported, len(r.inj.Casualties()))
	}
	r.offered, r.accepted, r.refused = offered, accepted, refused
	r.wave = wave
	r.outcome.Drained, r.outcome.Stalled, r.outcome.Deadlocked = drained, stalled, deadlocked
	r.done = done
	r.reported = 0
	for _, c := range r.inj.Casualties()[:reported] {
		r.printCasualty(c)
		r.reported++
	}
	return nil
}

// EncodeState appends the cell's loop state plus its machine's, injector's
// and watchdog's sections.
func (c *CellRun) EncodeState(w *checkpoint.Writer) {
	c.m.EncodeState(w)
	c.inj.EncodeState(w)
	e := w.Section(secCell)
	// Spec guard: the machine and injector carry their own fingerprints;
	// these cover the wave-loop knobs they cannot see.
	e.String(c.spec.Pattern.Name)
	e.Int(int64(c.spec.Waves))
	e.Int(c.spec.Gap)
	e.Int(c.spec.Horizon)
	e.Bool(c.spec.KeepDeliveries)
	c.wd.EncodeState(e)
	e.Int(int64(c.wave))
	e.Bool(c.done)
	for _, v := range []int{
		c.res.Offered, c.res.Accepted, c.res.Refused, c.res.RefusedOther,
		c.res.WavesAfterFault,
	} {
		e.Int(int64(v))
	}
	e.Bool(c.res.Stalled)
	e.Bool(c.res.Deadlocked)
}

// Snapshot serializes the cell into one container.
func (c *CellRun) Snapshot() []byte {
	w := checkpoint.NewWriter()
	c.EncodeState(w)
	return w.Bytes()
}

// DecodeState restores a container written by EncodeState into this cell,
// which must have been built with NewCellRun on the same Spec.
func (c *CellRun) DecodeState(r *checkpoint.Reader) error {
	if err := c.m.DecodeState(r); err != nil {
		return err
	}
	if err := c.inj.DecodeState(r); err != nil {
		return err
	}
	d, err := r.Section(secCell)
	if err != nil {
		return err
	}
	if name := d.String(); d.Err() == nil && name != c.spec.Pattern.Name {
		return fmt.Errorf("checkpoint: section %q: pattern %q does not match this cell's %q", secCell, name, c.spec.Pattern.Name)
	}
	d.Expect(int64(c.spec.Waves), "cell waves")
	d.Expect(c.spec.Gap, "cell gap")
	d.Expect(c.spec.Horizon, "cell horizon")
	if keep := d.Bool(); d.Err() == nil && keep != c.spec.KeepDeliveries {
		return fmt.Errorf("checkpoint: section %q: KeepDeliveries %v does not match this cell's %v", secCell, keep, c.spec.KeepDeliveries)
	}
	c.wd.DecodeState(d)
	wave := d.IntAsInt()
	done := d.Bool()
	var counters [5]int
	for i := range counters {
		counters[i] = d.IntAsInt()
	}
	stalled := d.Bool()
	deadlocked := d.Bool()
	if err := d.Finish(); err != nil {
		return err
	}
	if wave < 0 || wave > c.spec.Waves {
		return fmt.Errorf("checkpoint: section %q: wave %d outside [0,%d]", secCell, wave, c.spec.Waves)
	}
	c.wave = wave
	c.done = done
	c.res.Offered = counters[0]
	c.res.Accepted = counters[1]
	c.res.Refused = counters[2]
	c.res.RefusedOther = counters[3]
	c.res.WavesAfterFault = counters[4]
	c.res.Stalled = stalled
	c.res.Deadlocked = deadlocked
	return nil
}

// Restore replaces the cell's state with a container produced by Snapshot
// on a cell built from the same Spec.
func (c *CellRun) Restore(data []byte) error {
	r, err := checkpoint.NewReader(data)
	if err != nil {
		return err
	}
	return c.DecodeState(r)
}

// EncodeResult serializes one completed cell verdict into its own container
// (the Store's cell-NNNN.result files).
func EncodeResult(res CellResult) []byte {
	w := checkpoint.NewWriter()
	e := w.Section(secCellResult)
	fault.EncodeFault(e, res.Fault)
	e.Int(res.Epoch)
	e.String(res.Pattern)
	for _, v := range []int{
		res.Offered, res.Accepted, res.Refused, res.RefusedOther,
		res.Delivered, res.PredictedUnreachablePerWave, res.WavesAfterFault,
	} {
		e.Int(int64(v))
	}
	for _, v := range []int{
		res.Stats.EventsApplied, res.Stats.KilledInFlight, res.Stats.DropsEnRoute,
		res.Stats.DropsOther, res.Stats.Retransmits, res.Stats.Recovered,
		res.Stats.Duplicates, res.Stats.LostUnreachable, res.Stats.LostExhausted,
		res.Stats.LostUntraceable,
	} {
		e.Int(int64(v))
	}
	e.Bool(res.UnreachableAsPredicted)
	e.Bool(res.Drained)
	e.Bool(res.Stalled)
	e.Bool(res.Deadlocked)
	e.Int(res.EndCycle)
	e.Uint(uint64(len(res.Deliveries)))
	for _, d := range res.Deliveries {
		e.Uint(d.PacketID)
		geom.EncodeCoord(e, d.Src)
		geom.EncodeCoord(e, d.At)
		e.Bool(d.Broadcast)
		e.Bool(d.Detoured)
		e.Int(d.Cycle)
		e.Int(d.Latency)
	}
	return w.Bytes()
}

// DecodeResult reads a container written by EncodeResult.
func DecodeResult(data []byte) (CellResult, error) {
	var res CellResult
	r, err := checkpoint.NewReader(data)
	if err != nil {
		return res, err
	}
	d, err := r.Section(secCellResult)
	if err != nil {
		return res, err
	}
	res.Fault = fault.DecodeFault(d)
	res.Epoch = d.Int()
	res.Pattern = d.String()
	for _, p := range []*int{
		&res.Offered, &res.Accepted, &res.Refused, &res.RefusedOther,
		&res.Delivered, &res.PredictedUnreachablePerWave, &res.WavesAfterFault,
	} {
		*p = d.IntAsInt()
	}
	for _, p := range []*int{
		&res.Stats.EventsApplied, &res.Stats.KilledInFlight, &res.Stats.DropsEnRoute,
		&res.Stats.DropsOther, &res.Stats.Retransmits, &res.Stats.Recovered,
		&res.Stats.Duplicates, &res.Stats.LostUnreachable, &res.Stats.LostExhausted,
		&res.Stats.LostUntraceable,
	} {
		*p = d.IntAsInt()
	}
	res.UnreachableAsPredicted = d.Bool()
	res.Drained = d.Bool()
	res.Stalled = d.Bool()
	res.Deadlocked = d.Bool()
	res.EndCycle = d.Int()
	n := d.Len(8)
	for i := 0; i < n; i++ {
		var del core.Delivery
		del.PacketID = d.Uint()
		del.Src = geom.DecodeCoord(d)
		del.At = geom.DecodeCoord(d)
		del.Broadcast = d.Bool()
		del.Detoured = d.Bool()
		del.Cycle = d.Int()
		del.Latency = d.Int()
		res.Deliveries = append(res.Deliveries, del)
	}
	if err := d.Finish(); err != nil {
		return res, err
	}
	return res, nil
}
