package campaign

import (
	"bytes"
	"strings"
	"testing"

	"sr2201/internal/deadlock"
	"sr2201/internal/recovery"
)

// fig9WaitCycle is the exact wait cycle the analyzer must find in the
// paper's Fig. 9 configuration: the broadcast (pkt 2) holds S-XB(0,0) and
// D-XB-row outputs while starved of its own flits, the detoured unicast
// (pkt 1) holds the detour path while credit-stalled behind it, and the
// two close a ten-edge loop across both crossbar planes.
const fig9WaitCycle = `DEADLOCK: wait cycle of length 10
  pkt2 at RTC(0,0).in0 credit-stalled into XB1(0,0).in0
  pkt2 at XB1(0,0).in0 wants XB1(0,0).out3 owned by packet at XB1(0,0).in1
  pkt1 at XB1(0,0).in1 credit-stalled into RTC(0,3).in1
  pkt1 at RTC(0,3).in1 credit-stalled into XB0(0,3).in0
  pkt1 at XB0(0,3).in0 credit-stalled into RTC(2,3).in0
  pkt1 at RTC(2,3).in0 credit-stalled into XB1(2,0).in3
  pkt1 at XB1(2,0).in3 wants XB1(2,0).out2 owned by packet at XB1(2,0).in0
  pkt2 at XB1(2,0).in0 starved of flits from RTC(2,0).in0
  pkt2 at RTC(2,0).in0 starved of flits from XB0(0,0).in3
  pkt2 at XB0(0,0).in3 credit-stalled into RTC(0,0).in0
`

// fig9Analyze drives the bare (recovery-off) Fig. 9 run into its deadlock
// and returns the analyzer's report.
func fig9Analyze(t *testing.T) (deadlock.Report, int64) {
	t.Helper()
	spec := fig9Single(true, 0)
	spec.Recovery = recovery.Options{}
	var buf bytes.Buffer
	r, err := NewSingleRun(spec, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for !r.Step() {
	}
	out, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Deadlocked || out.Drained {
		t.Fatalf("fig9 bare run did not deadlock: %+v\n%s", out, buf.String())
	}
	return deadlock.Analyze(r.m.Engine()), r.Cycle()
}

// TestAnalyzeFig9GoldenWaitCycle pins the analyzer's verdict on the paper's
// Fig. 9 deadlock, edge for edge: detection cycle, cycle length, the
// participating packets, and the rendered dependency chain. Any change to
// the wait-for graph construction, the DFS, or the machine's arbitration
// that alters the diagnosed cycle shows up here as a diff against the
// golden text.
func TestAnalyzeFig9GoldenWaitCycle(t *testing.T) {
	rep, cycle := fig9Analyze(t)
	if !rep.Deadlocked {
		t.Fatalf("analyzer missed the wait cycle: %s", rep.Describe())
	}
	if cycle != 272 {
		t.Errorf("deadlock detected at cycle %d, golden is 272", cycle)
	}
	if len(rep.Cycle) != 10 {
		t.Errorf("wait cycle length %d, golden is 10:\n%s", len(rep.Cycle), rep.Describe())
	}
	// The victim the recovery layer would select: the lowest packet id on
	// the cycle is the detoured unicast, pkt 1.
	min := uint64(0)
	for _, e := range rep.Cycle {
		if hdr := e.From.CurrentHeader(); hdr != nil && (min == 0 || hdr.PacketID < min) {
			min = hdr.PacketID
		}
	}
	if min != 1 {
		t.Errorf("victim (min packet id on cycle) = %d, golden is 1", min)
	}
	if got := rep.Describe(); got != fig9WaitCycle {
		t.Errorf("wait cycle diverged from golden:\n--- got\n%s--- golden\n%s", got, fig9WaitCycle)
	}
}

// TestAnalyzeFig9Deterministic runs the analysis twice: the diagnosed
// cycle (and its rendering) must not depend on map iteration or run-to-run
// scheduling.
func TestAnalyzeFig9Deterministic(t *testing.T) {
	a, _ := fig9Analyze(t)
	b, _ := fig9Analyze(t)
	if a.Describe() != b.Describe() {
		t.Errorf("repeated analysis diverged:\n--- first\n%s--- second\n%s", a.Describe(), b.Describe())
	}
	if len(a.Edges) != len(b.Edges) || len(a.Blocked) != len(b.Blocked) {
		t.Errorf("wait-for graph size diverged: %d/%d edges, %d/%d blocked",
			len(a.Edges), len(b.Edges), len(a.Blocked), len(b.Blocked))
	}
	if !strings.Contains(a.Describe(), "DEADLOCK") {
		t.Errorf("describe lost its verdict line:\n%s", a.Describe())
	}
}
