// Package campaign runs exhaustive resilience campaigns: every single-fault
// placement × fault kind × injection epoch × traffic pattern, each cell a
// fresh machine with a scheduled mid-run fault (internal/inject), fanned
// through the internal/sweep worker pool. Per-cell verdicts — delivered,
// dropped, retransmitted, unreachable-as-predicted, deadlock — aggregate
// into availability and post-fault recovery tables whose rendered text is
// byte-identical at every parallelism level (cells are merged by index, and
// every cell is deterministic).
package campaign

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"sr2201/internal/core"
	"sr2201/internal/deadlock"
	"sr2201/internal/fault"
	"sr2201/internal/geom"
	"sr2201/internal/inject"
	"sr2201/internal/reconfig"
	"sr2201/internal/recovery"
	"sr2201/internal/routing"
	"sr2201/internal/stats"
	"sr2201/internal/sweep"
)

// Pattern is a deterministic traffic pattern: every live PE sends one packet
// per wave to Dest(shape, src). Self-addressed destinations are skipped.
// Patterns are pure functions (no rand), so cells replay identically.
type Pattern struct {
	Name string
	Dest func(shape geom.Shape, src geom.Coord) geom.Coord
}

// Shift returns the pattern sending each PE to the PE k places later in
// enumeration order (wrapping), a lattice-wide permutation that crosses both
// dimensions for most k.
func Shift(k int) Pattern {
	return Pattern{
		Name: fmt.Sprintf("shift+%d", k),
		Dest: func(shape geom.Shape, src geom.Coord) geom.Coord {
			return shape.CoordOf((shape.Index(src) + k) % shape.Size())
		},
	}
}

// Reverse returns the pattern pairing PE i with PE n-1-i (bit-reversal-like
// full-distance permutation).
func Reverse() Pattern {
	return Pattern{
		Name: "reverse",
		Dest: func(shape geom.Shape, src geom.Coord) geom.Coord {
			return shape.CoordOf(shape.Size() - 1 - shape.Index(src))
		},
	}
}

// Pair returns the single-flow pattern: only src sends, to dst (every other
// PE maps to itself and is skipped). It reproduces paper figures built
// around one specific route — the R-series uses it for the Fig. 9 detoured
// p2p.
func Pair(src, dst geom.Coord, dims int) Pattern {
	return Pattern{
		// The name round-trips through ParsePattern: "pair:0,1>2,2".
		Name: fmt.Sprintf("pair:%s>%s",
			strings.Trim(src.In(dims), "()"), strings.Trim(dst.In(dims), "()")),
		Dest: func(shape geom.Shape, s geom.Coord) geom.Coord {
			if s == src {
				return dst
			}
			return s
		},
	}
}

// Broadcast schedules one broadcast injection into a cell's workload: the
// paper's Fig. 9 deadlock needs a broadcast crossing a detoured unicast, so
// recovery cells mix both traffic kinds.
type Broadcast struct {
	// Cycle is the injection time (skipped broadcasts from dead sources are
	// counted refused, not fatal).
	Cycle int64
	// Src is the broadcast origin PE.
	Src geom.Coord
	// Size in flits (0 = core default).
	Size int
}

// Spec describes one campaign cell: a machine, a fault schedule, and a wave
// workload.
type Spec struct {
	Shape geom.Shape
	// Topology selects the cell's interconnect (see core.Config.Topology):
	// "" or "mdx" is the paper's MD crossbar, "hyperx" and "fullmesh" the
	// direct-link lattices. Crossbar-only workload features (broadcasts,
	// S-XB/D-XB variants, the pivot extension) are rejected on direct-link
	// topologies.
	Topology string
	// Events is the fault schedule (usually a single placement at one epoch).
	Events []inject.Event
	// Pattern chooses each wave's destinations.
	Pattern Pattern
	// Waves is the number of traffic waves; wave w injects at cycle w*Gap.
	Waves int
	// Gap is the cycle spacing between waves (>= 1).
	Gap int64
	// PacketSize in flits (0 = core default).
	PacketSize int
	// Inject tunes recovery (retransmission etc.).
	Inject inject.Options
	// Horizon caps the run (<= 0 selects 50k cycles).
	Horizon int64
	// KeepDeliveries retains per-delivery records (for latency-recovery
	// curves); off by default to keep exhaustive campaigns lean.
	KeepDeliveries bool
	// Recovery enables the liveness layer: a confirmed wait cycle is
	// dissolved by sacrificing the lowest-ID packet on it (retransmitted by
	// the inject machinery), with livelock escalation at the per-packet cap.
	Recovery recovery.Options
	// Preset faults are installed before any traffic (static AddFault), the
	// paper's fault-known-at-boot scenario; Events remain the dynamic
	// mid-run schedule.
	Preset []fault.Fault
	// Broadcasts schedules broadcast injections alongside the unicast
	// waves. Normalized into ascending cycle order.
	Broadcasts []Broadcast
	// SXB/DXB/DXBSeparate/NaiveBroadcast/PivotLastDim forward to core.Config,
	// selecting the machine variant the cell runs on. Zero values are the
	// paper's deadlock-free defaults. The replay tooling records them so a
	// divergence bisection can compare two variants of one workload.
	SXB, DXB       geom.Coord
	DXBSeparate    bool
	NaiveBroadcast bool
	PivotLastDim   bool
	// VCs/Adaptive forward to core.Config: virtual channels per wire and
	// escape-VC adaptive routing (see core.Config for the constraints).
	VCs      int
	Adaptive bool
	// Shards steps the cell's machine on that many spatial shards (see
	// core.Config.Shards). The verdict — like everything downstream of the
	// kernel — is identical at any shard count.
	Shards int
	// Reconfig enables online routing-table reconfiguration (see
	// core.Config.Reconfig for the modes and constraints): mid-run faults
	// and/or confirmed deadlocks recompile the policy and swap it in behind
	// a certified transition instead of rebuilding in place.
	Reconfig string
	// ReconfigDrainBudget caps the bounded drain when a transition's union
	// graph is cyclic (<= 0 = reconfig.DefaultDrainBudget).
	ReconfigDrainBudget int
}

func (s *Spec) normalize() error {
	if s.Shape.Dims() == 0 {
		return fmt.Errorf("campaign: spec needs a shape")
	}
	if s.Pattern.Dest == nil {
		return fmt.Errorf("campaign: spec needs a pattern")
	}
	if s.Waves < 1 {
		s.Waves = 1
	}
	if s.Gap < 1 {
		s.Gap = 1
	}
	if s.Horizon <= 0 {
		s.Horizon = 50_000
	}
	if s.Topology != "" && s.Topology != core.TopologyMDX && len(s.Broadcasts) > 0 {
		return fmt.Errorf("campaign: topology %q has no hardware broadcast; remove the broadcast schedule", s.Topology)
	}
	for _, b := range s.Broadcasts {
		if b.Cycle < 0 {
			return fmt.Errorf("campaign: negative broadcast cycle %d", b.Cycle)
		}
	}
	// Cycle order, insertion order breaking ties — like the fault schedule.
	sort.SliceStable(s.Broadcasts, func(i, j int) bool { return s.Broadcasts[i].Cycle < s.Broadcasts[j].Cycle })
	return nil
}

// CellResult is one cell's verdict.
type CellResult struct {
	Fault   fault.Fault
	Epoch   int64
	Pattern string

	// Offered counts send attempts from live PEs; Accepted the ones the NIA
	// took; Refused the ErrUnreachable refusals (expected post-fault for
	// destinations the fault bits rule out); RefusedOther any other refusal
	// (must stay zero).
	Offered, Accepted, Refused, RefusedOther int

	// Delivered counts unicast packets consumed at PEs (originals +
	// recoveries); broadcast copies are accounted separately so the
	// availability ratio stays Delivered/Accepted.
	Delivered int
	// Stats is the injector's loss/recovery accounting.
	Stats inject.Stats

	// Broadcasts counts scheduled broadcast injections that were issued;
	// BroadcastsRefused the ones the policy declined (dead origin).
	// BroadcastCopiesExpected sums the copies each issued broadcast owed;
	// BroadcastCopies the copies actually consumed at PEs.
	Broadcasts              int
	BroadcastsRefused       int
	BroadcastCopiesExpected int
	BroadcastCopies         int

	// Recoveries counts deadlock victims sacrificed by the recovery layer;
	// Livelocked marks a cell abandoned at the per-packet recovery cap
	// (recovery.ErrLivelock class). Livelocked implies Stalled and
	// Deadlocked.
	Recoveries int
	Livelocked bool

	// ReconfigEnabled marks a cell run with online reconfiguration;
	// Reconfigured counts committed table swaps (hot or after a drain),
	// ReconfigDrained the packets purged by bounded drains, and
	// ReconfigFellBack the attempts degraded to rebuild-in-place.
	ReconfigEnabled  bool
	Reconfigured     int
	ReconfigDrained  int
	ReconfigFellBack int

	// SourceDeadPairs/DestDeadPairs/UnreachablePairs is the per-pair
	// reachability classification of the pattern against the final fault
	// set (recovery.AnalyzeReachability): exact graceful-degradation
	// reporting when a second fault breaks the detour guarantee.
	SourceDeadPairs  int
	DestDeadPairs    int
	UnreachablePairs int

	// PredictedUnreachablePerWave is the static post-fault prediction: live
	// source PEs whose pattern destination the rebuilt policy reports
	// unreachable. WavesAfterFault counts waves injected strictly after the
	// (first) fault epoch. UnreachableAsPredicted is the verdict that the
	// observed refusals match prediction × waves.
	PredictedUnreachablePerWave int
	WavesAfterFault             int
	UnreachableAsPredicted      bool

	Drained    bool
	Stalled    bool
	Deadlocked bool
	EndCycle   int64

	// Deliveries is retained only when Spec.KeepDeliveries is set.
	Deliveries []core.Delivery
}

// Availability is the fraction of accepted packets finally delivered
// (1 when nothing was accepted).
func (r CellResult) Availability() float64 {
	if r.Accepted == 0 {
		return 1
	}
	return float64(r.Delivered) / float64(r.Accepted)
}

// CellRun is one campaign cell as a resumable stepper: the same loop RunCell
// executes, broken at cycle granularity so the caller can snapshot between
// Steps, checkpoint to a Store, and restore after a crash with a result
// identical to the uninterrupted run.
type CellRun struct {
	spec Spec
	m    *core.Machine
	inj  *inject.Injector
	wd   *deadlock.Watchdog
	sup  *recovery.Supervisor
	mgr  *reconfig.Manager

	res   CellResult
	wave  int
	bNext int // next spec.Broadcasts index
	done  bool

	// preDenied is the per-wave refusal prediction against the preset-only
	// fault set, captured before any dynamic event fires. Spec-derived
	// (recomputed by NewCellRun), so it needs no snapshot entry.
	preDenied int
}

// NewCellRun builds the cell's machine and fault schedule without stepping.
func NewCellRun(spec Spec) (*CellRun, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	m, err := core.NewMachine(core.Config{
		Shape:          spec.Shape,
		Topology:       spec.Topology,
		SXB:            spec.SXB,
		DXB:            spec.DXB,
		DXBSeparate:    spec.DXBSeparate,
		NaiveBroadcast: spec.NaiveBroadcast,
		PivotLastDim:   spec.PivotLastDim,
		VCs:            spec.VCs,
		Adaptive:       spec.Adaptive,
		PacketSize:     spec.PacketSize,
		StallThreshold: spec.Inject.StallThreshold,
		Shards:         spec.Shards,
		Reconfig:       spec.Reconfig,
	})
	if err != nil {
		return nil, err
	}
	// Preset faults are known before any traffic — the NIA's fault
	// information is pre-set, so first-wave sends already consult it.
	for _, f := range spec.Preset {
		if err := m.AddFault(f); err != nil {
			return nil, fmt.Errorf("campaign: preset fault: %w", err)
		}
	}
	inj, err := inject.New(m, spec.Events, spec.Inject)
	if err != nil {
		return nil, err
	}
	c := &CellRun{spec: spec, m: m, inj: inj, wd: deadlock.NewWatchdog(m.Engine(), spec.Inject.StallThreshold)}
	if spec.Recovery.Enabled {
		c.sup = recovery.New(m, inj, spec.Recovery)
	}
	if spec.Reconfig != "" {
		mgr, err := reconfig.New(m, reconfig.Options{DrainBudget: spec.ReconfigDrainBudget})
		if err != nil {
			return nil, err
		}
		mgr.OnDrained(inj.LoseDrained)
		if c.sup != nil && mgr.CoversDeadlock() {
			c.sup.OnDeadlock(mgr.OnDeadlock)
		}
		c.mgr = mgr
	}
	c.res = CellResult{Pattern: spec.Pattern.Name, ReconfigEnabled: spec.Reconfig != ""}
	if len(spec.Events) > 0 {
		c.res.Fault = spec.Events[0].Fault
		c.res.Epoch = spec.Events[0].Cycle
	} else if len(spec.Preset) > 0 {
		c.res.Fault = spec.Preset[0]
	}
	c.preDenied = recovery.AnalyzeReachability(m, func(src geom.Coord) geom.Coord {
		return spec.Pattern.Dest(spec.Shape, src)
	}).Denied()
	return c, nil
}

// OnRecovery registers a callback for every recovery event of this cell
// (no-op unless Spec.Recovery is enabled). Must be set before stepping.
func (c *CellRun) OnRecovery(fn func(recovery.Event)) {
	if c.sup != nil {
		c.sup.OnEvent(fn)
	}
}

// OnReconfig registers a callback for every reconfiguration event of this
// cell (no-op unless Spec.Reconfig is set). Must be set before stepping.
func (c *CellRun) OnReconfig(fn func(reconfig.Event)) {
	if c.mgr != nil {
		c.mgr.OnEvent(fn)
	}
}

// Machine exposes the cell's machine (the replay tooling reads its engine).
func (c *CellRun) Machine() *core.Machine { return c.m }

// Done reports whether the cell has reached its verdict.
func (c *CellRun) Done() bool { return c.done }

// Cycle returns the cell's current simulation time.
func (c *CellRun) Cycle() int64 { return c.m.Cycle() }

// Step advances the cell one cycle (injecting any due wave first) and
// returns true when the cell is finished — drained, stalled, or past its
// horizon. Step on a finished cell is a no-op returning true.
func (c *CellRun) Step() bool {
	if c.done {
		return true
	}
	eng := c.m.Engine()
	if eng.Cycle() >= c.spec.Horizon {
		c.done = true
		return true
	}
	if c.wave < c.spec.Waves && eng.Cycle() == int64(c.wave)*c.spec.Gap {
		if int64(c.wave)*c.spec.Gap > c.res.Epoch && len(c.spec.Events) > 0 {
			c.res.WavesAfterFault++
		}
		c.spec.Shape.Enumerate(func(src geom.Coord) bool {
			if !c.m.Alive(src) {
				return true // a dead PE cannot offer traffic
			}
			dst := c.spec.Pattern.Dest(c.spec.Shape, src)
			if dst == src {
				return true
			}
			c.res.Offered++
			if _, err := c.m.Send(src, dst, c.spec.PacketSize); err != nil {
				if errors.Is(err, routing.ErrUnreachable) {
					c.res.Refused++
				} else {
					c.res.RefusedOther++
				}
				return true
			}
			c.res.Accepted++
			return true
		})
		c.wave++
	}
	for c.bNext < len(c.spec.Broadcasts) && c.spec.Broadcasts[c.bNext].Cycle <= eng.Cycle() {
		b := c.spec.Broadcasts[c.bNext]
		c.bNext++
		if _, copies, err := c.m.Broadcast(b.Src, b.Size); err != nil {
			c.res.BroadcastsRefused++
		} else {
			c.res.Broadcasts++
			c.res.BroadcastCopiesExpected += copies
		}
	}
	if c.wave >= c.spec.Waves && c.bNext >= len(c.spec.Broadcasts) && eng.Quiescent() && !c.inj.Pending() {
		c.done = true
		return true
	}
	c.m.Step()
	if c.sup != nil {
		// The liveness layer owns the stall verdict: it recovers what it
		// can and decides only when it cannot (wedge, undissolvable cycle,
		// livelock cap).
		if v := c.sup.Verdict(); v.Decided {
			c.res.Stalled = true
			c.res.Deadlocked = v.Deadlocked
			c.res.Livelocked = v.Livelocked
			c.done = true
		}
	} else if c.wd.Stalled() {
		rep := deadlock.Analyze(eng)
		c.res.Stalled = true
		c.res.Deadlocked = rep.Deadlocked
		c.done = true
	}
	if eng.Cycle() >= c.spec.Horizon {
		c.done = true
	}
	return c.done
}

// Result computes the cell's verdict. Valid once Done (calling it earlier
// returns the partial counters with the prediction of the current policy).
func (c *CellRun) Result() (CellResult, error) {
	res := c.res
	if err := c.inj.Err(); err != nil {
		return res, err
	}
	if c.mgr != nil {
		if err := c.mgr.Err(); err != nil {
			return res, err
		}
		st := c.mgr.Stats()
		res.Reconfigured = st.HotSwaps + st.Drains
		res.ReconfigDrained = st.DrainedPackets
		res.ReconfigFellBack = st.Fallbacks
	}
	eng := c.m.Engine()
	res.Drained = c.wave >= c.spec.Waves && c.bNext >= len(c.spec.Broadcasts) &&
		eng.Quiescent() && !c.inj.Pending()
	res.EndCycle = eng.Cycle()
	for _, d := range c.m.Deliveries() {
		if d.Broadcast {
			res.BroadcastCopies++
		} else {
			res.Delivered++
		}
	}
	res.Stats = c.inj.Stats()
	if c.sup != nil {
		res.Recoveries = c.sup.Stats().Recoveries
	}
	if c.spec.KeepDeliveries {
		res.Deliveries = c.m.Deliveries()
	}

	// Static prediction: with the final fault set, which live-source sends
	// does the policy refuse? The unreachable-as-predicted verdict demands
	// that the observed refusals are exactly these, once per post-fault
	// wave. (Waves at or before the epoch are sent against the pre-fault
	// policy, which — with no preset faults — refuses nothing.) The
	// reachability analyzer also supplies the per-pair classification for
	// graceful multi-fault degradation reports.
	reach := recovery.AnalyzeReachability(c.m, func(src geom.Coord) geom.Coord {
		return c.spec.Pattern.Dest(c.spec.Shape, src)
	})
	res.SourceDeadPairs = reach.SourceDead
	res.DestDeadPairs = reach.DestDead
	res.UnreachablePairs = reach.Unreachable
	res.PredictedUnreachablePerWave = reach.Denied()
	// Waves before the (first) dynamic fault see only the preset faults;
	// waves after it see the final set. With no presets the pre-fault
	// prediction is zero and this reduces to the original formula.
	wavesBefore := c.wave - res.WavesAfterFault
	predictedRefusals := c.preDenied*wavesBefore + res.PredictedUnreachablePerWave*res.WavesAfterFault
	res.UnreachableAsPredicted = res.Refused == predictedRefusals && res.RefusedOther == 0
	return res, nil
}

// RunCell executes one campaign cell to completion.
func RunCell(spec Spec) (CellResult, error) {
	c, err := NewCellRun(spec)
	if err != nil {
		return CellResult{}, err
	}
	for !c.Step() {
	}
	return c.Result()
}

// Placements enumerates every single-fault position of the MD crossbar:
// all routers, then all crossbar lines dimension by dimension, in lattice
// enumeration order.
func Placements(shape geom.Shape) []fault.Fault {
	var out []fault.Fault
	shape.Enumerate(func(c geom.Coord) bool {
		out = append(out, fault.RouterFault(c))
		return true
	})
	for _, l := range shape.Lines() {
		out = append(out, fault.XBFault(l))
	}
	return out
}

// PlacementsFor enumerates every single-fault position of the named
// topology: the MD crossbar has routers and shared crossbars; direct-link
// topologies have routers and per-pair links (all routers first, then
// dimension by dimension every in-line pair, in lattice enumeration order).
func PlacementsFor(topology string, shape geom.Shape) []fault.Fault {
	if topology == "" || topology == core.TopologyMDX {
		return Placements(shape)
	}
	var out []fault.Fault
	shape.Enumerate(func(c geom.Coord) bool {
		out = append(out, fault.RouterFault(c))
		return true
	})
	for dim := 0; dim < shape.Dims(); dim++ {
		for _, l := range shape.LinesAlong(dim) {
			for a := 0; a < shape[dim]; a++ {
				for b := a + 1; b < shape[dim]; b++ {
					out = append(out, fault.LinkFault(l.Point(a), l.Point(b)))
				}
			}
		}
	}
	return out
}

// Config describes a whole campaign: the placement grid crossed with epochs
// and patterns.
type Config struct {
	Shape geom.Shape
	// Topology selects every cell's interconnect (see Spec.Topology) and
	// the placement grid: router+crossbar faults on the MD crossbar,
	// router+link faults on the direct-link topologies.
	Topology string
	// Epochs are the fault-activation cycles to sweep.
	Epochs []int64
	// Patterns are the traffic patterns to sweep.
	Patterns []Pattern
	// Waves/Gap/PacketSize/Inject/Horizon configure every cell (see Spec).
	Waves      int
	Gap        int64
	PacketSize int
	Inject     inject.Options
	Horizon    int64
	// Recovery enables the liveness layer in every cell (see Spec.Recovery).
	Recovery recovery.Options
	// Preset faults are installed in every cell before traffic; placements
	// that collide with a preset are skipped (the cell grid covers the
	// *second* fault). See Spec.Preset.
	Preset []fault.Fault
	// Broadcasts schedules broadcast injections in every cell (see
	// Spec.Broadcasts).
	Broadcasts []Broadcast
	// SXB/DXB/DXBSeparate/NaiveBroadcast/PivotLastDim select the machine
	// variant every cell runs on (see Spec).
	SXB, DXB       geom.Coord
	DXBSeparate    bool
	NaiveBroadcast bool
	PivotLastDim   bool
	// VCs/Adaptive select virtual channels and escape-VC adaptive routing
	// for every cell (see Spec).
	VCs      int
	Adaptive bool
	// Shards steps every cell's machine on that many spatial shards (see
	// Spec.Shards); results are identical at any shard count.
	Shards int
	// Reconfig/ReconfigDrainBudget enable online reconfiguration in every
	// cell (see Spec.Reconfig).
	Reconfig            string
	ReconfigDrainBudget int
	// OnRecovery, if non-nil, is called for every recovery event of every
	// cell, from worker goroutines (progress feed for the job server).
	OnRecovery func(recovery.Event)
	// OnReconfig, if non-nil, is called for every reconfiguration event of
	// every cell, from worker goroutines (progress feed for the job server).
	OnReconfig func(reconfig.Event)
	// Parallel caps the sweep worker pool (<= 0 = DefaultParallel, 1 = serial).
	Parallel int
	// Ctx, if non-nil, cancels the campaign between cells (running cells
	// finish; Run returns ctx.Err()). Set by the job server.
	Ctx context.Context
	// Budget, if non-nil, draws cell worker slots from a budget shared
	// with other concurrently running sweeps (see sweep.Limiter).
	Budget *sweep.Limiter
	// OnCell, if non-nil, is called once per completed cell with the
	// simulated cycles that cell consumed, from worker goroutines in
	// completion order (progress feed for the job server).
	OnCell func(cycles int64)
	// Store, if non-nil, makes the campaign crash-safe: completed cells are
	// persisted and skipped on a re-run, and in-progress cells checkpoint
	// every CheckpointEvery cycles so a killed campaign resumes mid-cell.
	// The aggregate result is identical with or without interruption.
	Store *Store
	// CheckpointEvery is the mid-cell snapshot interval in cycles (<= 0
	// disables mid-cell snapshots; completed-cell persistence still works).
	CheckpointEvery int64
}

// Result is a completed campaign.
type Result struct {
	Shape geom.Shape
	Cells []CellResult
}

// Run enumerates the grid and fans the cells through the sweep pool.
// Results are merged by cell index, so the campaign — like every sweep in
// this repository — is byte-identical at any parallelism level.
func Run(cfg Config) (*Result, error) {
	if cfg.Shape.Dims() == 0 {
		return nil, fmt.Errorf("campaign: config needs a shape")
	}
	if len(cfg.Epochs) == 0 {
		return nil, fmt.Errorf("campaign: config needs at least one epoch")
	}
	if len(cfg.Patterns) == 0 {
		return nil, fmt.Errorf("campaign: config needs at least one pattern")
	}
	type cellSpec struct {
		f     fault.Fault
		epoch int64
		pat   Pattern
	}
	// Placements colliding with a preset fault cannot be scheduled on top
	// of it: skip them, so a preset campaign sweeps every *additional*
	// fault.
	probe := fault.NewSet(cfg.Shape)
	for _, f := range cfg.Preset {
		if err := probe.Add(f); err != nil {
			return nil, fmt.Errorf("campaign: preset fault: %w", err)
		}
	}
	var grid []cellSpec
	for _, f := range PlacementsFor(cfg.Topology, cfg.Shape) {
		if len(cfg.Preset) > 0 {
			// Add is idempotent, so collision means membership: a placement
			// already in the preset set would re-break broken hardware.
			if (f.Kind == fault.KindRouter && probe.RouterFaulty(f.Coord)) ||
				(f.Kind == fault.KindXB && probe.XBFaulty(f.Line)) ||
				(f.Kind == fault.KindLink && probe.LinkFaulty(f.Coord, f.To)) {
				continue
			}
		}
		for _, epoch := range cfg.Epochs {
			for _, pat := range cfg.Patterns {
				grid = append(grid, cellSpec{f: f, epoch: epoch, pat: pat})
			}
		}
	}
	runCell := func(i int) (CellResult, error) {
		g := grid[i]
		spec := Spec{
			Shape:               cfg.Shape,
			Topology:            cfg.Topology,
			Events:              []inject.Event{{Cycle: g.epoch, Fault: g.f}},
			Pattern:             g.pat,
			Waves:               cfg.Waves,
			Gap:                 cfg.Gap,
			PacketSize:          cfg.PacketSize,
			Inject:              cfg.Inject,
			Horizon:             cfg.Horizon,
			Recovery:            cfg.Recovery,
			Preset:              cfg.Preset,
			Broadcasts:          cfg.Broadcasts,
			SXB:                 cfg.SXB,
			DXB:                 cfg.DXB,
			DXBSeparate:         cfg.DXBSeparate,
			NaiveBroadcast:      cfg.NaiveBroadcast,
			PivotLastDim:        cfg.PivotLastDim,
			VCs:                 cfg.VCs,
			Adaptive:            cfg.Adaptive,
			Shards:              cfg.Shards,
			Reconfig:            cfg.Reconfig,
			ReconfigDrainBudget: cfg.ReconfigDrainBudget,
		}
		res, err := runStoredCell(cfg, i, spec)
		if cfg.OnCell != nil && err == nil {
			cfg.OnCell(res.EndCycle)
		}
		return res, err
	}
	var cells []CellResult
	var err error
	if cfg.Ctx != nil || cfg.Budget != nil {
		cells, err = sweep.DoCtxErr(cfg.Ctx, cfg.Budget, len(grid), cfg.Parallel, runCell)
	} else {
		cells, err = sweep.DoErr(len(grid), cfg.Parallel, runCell)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Shape: cfg.Shape, Cells: cells}, nil
}

// runStoredCell runs one cell, consulting the store (when configured) for a
// completed result or a mid-cell snapshot first, checkpointing periodically,
// and parking a final snapshot when the context cancels mid-cell.
func runStoredCell(cfg Config, i int, spec Spec) (CellResult, error) {
	if cfg.Store == nil && cfg.OnRecovery == nil && cfg.OnReconfig == nil {
		return RunCell(spec)
	}
	if cfg.Store != nil {
		if res, ok, err := cfg.Store.LoadResult(i); err != nil {
			return CellResult{}, err
		} else if ok {
			return res, nil
		}
	}
	c, err := NewCellRun(spec)
	if err != nil {
		return CellResult{}, err
	}
	if cfg.Store != nil {
		if data, ok := cfg.Store.LoadSnap(i); ok {
			// A stale or corrupt snapshot (spec changed, torn write) is not
			// fatal: fall back to running the cell from the start.
			if rerr := c.Restore(data); rerr != nil {
				if c, err = NewCellRun(spec); err != nil {
					return CellResult{}, err
				}
			}
		}
	}
	if cfg.OnRecovery != nil {
		c.OnRecovery(cfg.OnRecovery)
	}
	if cfg.OnReconfig != nil {
		c.OnReconfig(cfg.OnReconfig)
	}
	if cfg.Store == nil {
		for !c.Step() {
			if cfg.Ctx != nil && c.Cycle()%64 == 0 {
				if err := cfg.Ctx.Err(); err != nil {
					return CellResult{}, err
				}
			}
		}
		return c.Result()
	}
	lastSnap := c.Cycle()
	for !c.Step() {
		if cfg.Ctx != nil && c.Cycle()%64 == 0 {
			if err := cfg.Ctx.Err(); err != nil {
				if serr := cfg.Store.SaveSnap(i, c.Snapshot()); serr != nil {
					return CellResult{}, serr
				}
				return CellResult{}, err
			}
		}
		if cfg.CheckpointEvery > 0 && c.Cycle()-lastSnap >= cfg.CheckpointEvery {
			if err := cfg.Store.SaveSnap(i, c.Snapshot()); err != nil {
				return CellResult{}, err
			}
			lastSnap = c.Cycle()
		}
	}
	res, err := c.Result()
	if err != nil {
		return res, err
	}
	if err := cfg.Store.SaveResult(i, res); err != nil {
		return res, err
	}
	return res, nil
}

// Deadlocks counts cells whose run deadlocked.
func (r *Result) Deadlocks() int {
	n := 0
	for _, c := range r.Cells {
		if c.Deadlocked {
			n++
		}
	}
	return n
}

// Stalls counts cells that stalled without a confirmed wait cycle.
func (r *Result) Stalls() int {
	n := 0
	for _, c := range r.Cells {
		if c.Stalled && !c.Deadlocked {
			n++
		}
	}
	return n
}

// Recoveries sums deadlock victims sacrificed across all cells.
func (r *Result) Recoveries() int {
	n := 0
	for _, c := range r.Cells {
		n += c.Recoveries
	}
	return n
}

// Livelocked counts cells abandoned at the per-packet recovery cap.
func (r *Result) Livelocked() int {
	n := 0
	for _, c := range r.Cells {
		if c.Livelocked {
			n++
		}
	}
	return n
}

// Reconfigured sums committed table swaps across all cells.
func (r *Result) Reconfigured() int {
	n := 0
	for _, c := range r.Cells {
		n += c.Reconfigured
	}
	return n
}

// ReconfigDrained sums packets purged by bounded drains across all cells.
func (r *Result) ReconfigDrained() int {
	n := 0
	for _, c := range r.Cells {
		n += c.ReconfigDrained
	}
	return n
}

// ReconfigFellBack sums attempts degraded to rebuild-in-place across all
// cells.
func (r *Result) ReconfigFellBack() int {
	n := 0
	for _, c := range r.Cells {
		n += c.ReconfigFellBack
	}
	return n
}

// reconfigEnabled reports whether any cell ran with online reconfiguration
// (the summary then carries the reconfiguration counters).
func (r *Result) reconfigEnabled() bool {
	for _, c := range r.Cells {
		if c.ReconfigEnabled {
			return true
		}
	}
	return false
}

// faultClass buckets a placement for aggregation: "rtc", "xb-dim<k>" or
// "link-dim<k>".
func faultClass(f fault.Fault) string {
	switch f.Kind {
	case fault.KindRouter:
		return "rtc"
	case fault.KindLink:
		return fmt.Sprintf("link-dim%d", f.Coord.FirstDiff(f.To, geom.MaxDims))
	}
	return fmt.Sprintf("xb-dim%d", f.Line.Dim)
}

// Table aggregates the cells into the campaign coverage table: one row per
// fault class × epoch × pattern, in first-appearance (grid) order.
func (r *Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("single-fault campaign on %v (%d cells)", r.Shape, len(r.Cells)),
		"class", "epoch", "pattern", "cells", "deadlock", "dl-recov", "avail(min)", "avail(mean)",
		"killed", "retx", "recovered", "lost-unreach", "dup", "as-predicted",
	)
	type key struct {
		class   string
		epoch   int64
		pattern string
	}
	type agg struct {
		cells, deadlocks, recoveries         int
		availSum, availMin                   float64
		killed, retx, recovered, lostUnreach int
		dup                                  int
		predicted                            int
	}
	var order []key
	groups := map[key]*agg{}
	for _, c := range r.Cells {
		k := key{faultClass(c.Fault), c.Epoch, c.Pattern}
		g := groups[k]
		if g == nil {
			g = &agg{availMin: 2}
			groups[k] = g
			order = append(order, k)
		}
		g.cells++
		if c.Deadlocked {
			g.deadlocks++
		}
		g.recoveries += c.Recoveries
		av := c.Availability()
		g.availSum += av
		if av < g.availMin {
			g.availMin = av
		}
		g.killed += c.Stats.KilledInFlight + c.Stats.DropsEnRoute
		g.retx += c.Stats.Retransmits
		g.recovered += c.Stats.Recovered
		g.lostUnreach += c.Stats.LostUnreachable
		g.dup += c.Stats.Duplicates
		if c.UnreachableAsPredicted {
			g.predicted++
		}
	}
	for _, k := range order {
		g := groups[k]
		t.AddRow(k.class, k.epoch, k.pattern, g.cells, g.deadlocks, g.recoveries,
			g.availMin, g.availSum/float64(g.cells),
			g.killed, g.retx, g.recovered, g.lostUnreach, g.dup,
			fmt.Sprintf("%d/%d", g.predicted, g.cells))
	}
	return t
}

// String renders the campaign verdict: the coverage table plus the summary
// line the CLI and experiments print.
func (r *Result) String() string {
	var b strings.Builder
	b.WriteString(r.Table().String())
	fmt.Fprintf(&b, "cells=%d deadlocks=%d stalls=%d undrained=%d recoveries=%d livelocked=%d\n",
		len(r.Cells), r.Deadlocks(), r.Stalls(), r.undrained(), r.Recoveries(), r.Livelocked())
	if r.reconfigEnabled() {
		fmt.Fprintf(&b, "reconfigured=%d drained=%d fellback=%d\n",
			r.Reconfigured(), r.ReconfigDrained(), r.ReconfigFellBack())
	}
	return b.String()
}

func (r *Result) undrained() int {
	n := 0
	for _, c := range r.Cells {
		if !c.Drained && !c.Stalled {
			n++
		}
	}
	return n
}
