package campaign

// Store is a directory-backed checkpoint store for campaigns. Each cell
// index owns two files: cell-NNNN.result (the completed verdict, encoded
// with EncodeResult) and cell-NNNN.snap (a mid-cell CellRun snapshot).
// Writes go through a temp file plus rename, so a crash mid-write leaves
// either the old file or none — never a torn one; corrupt files (e.g. from
// a torn snapshot on a filesystem without atomic rename) are indistinguished
// from absent ones by Load, so the worst case is re-running a cell. A
// result supersedes a snapshot: saving the result deletes the snapshot.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store persists per-cell campaign progress under one directory.
type Store struct {
	dir string
}

// OpenStore creates (if needed) and opens the directory, sweeping out
// temp-file litter a crashed (SIGKILLed) writer left behind. The open
// happens under the caller's exclusive ownership of the cell store — in
// the jobs layer, after the execution's lease is won — so no live writer
// can be mid-rename here.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("campaign: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: open store: %w", err)
	}
	if ents, err := os.ReadDir(dir); err == nil {
		for _, ent := range ents {
			if strings.Contains(ent.Name(), ".tmp-") {
				os.Remove(filepath.Join(dir, ent.Name()))
			}
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) resultPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("cell-%04d.result", i))
}

func (s *Store) snapPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("cell-%04d.snap", i))
}

// writeAtomic writes data to path via a temp file in the same directory.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// SaveResult records a completed cell and retires its snapshot.
func (s *Store) SaveResult(i int, res CellResult) error {
	if err := s.writeAtomic(s.resultPath(i), EncodeResult(res)); err != nil {
		return fmt.Errorf("campaign: save result %d: %w", i, err)
	}
	os.Remove(s.snapPath(i))
	return nil
}

// LoadResult fetches a completed cell's verdict. ok is false when the cell
// has no (readable, well-formed) result on disk.
func (s *Store) LoadResult(i int) (res CellResult, ok bool, err error) {
	data, rerr := os.ReadFile(s.resultPath(i))
	if rerr != nil {
		return res, false, nil
	}
	res, derr := DecodeResult(data)
	if derr != nil {
		return CellResult{}, false, nil
	}
	return res, true, nil
}

// SaveSnap records a mid-cell snapshot.
func (s *Store) SaveSnap(i int, data []byte) error {
	if err := s.writeAtomic(s.snapPath(i), data); err != nil {
		return fmt.Errorf("campaign: save snapshot %d: %w", i, err)
	}
	return nil
}

// LoadSnap fetches a mid-cell snapshot, ok=false when absent.
func (s *Store) LoadSnap(i int) (data []byte, ok bool) {
	data, err := os.ReadFile(s.snapPath(i))
	if err != nil {
		return nil, false
	}
	return data, true
}
